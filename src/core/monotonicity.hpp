#pragma once
// Monotonicity checker: verifies the Theorem 2 premise empirically.
//
// Theorem 2 requires the algorithm's computing results to "monotonically
// increase or decrease, but not both" (the paper's ref. [23]). The checker
// observes every committed edge write during an instrumented deterministic
// run, projects each edge datum to a double via the program's projection, and
// records whether any write increased and whether any write decreased its
// edge's previous value. Monotone algorithms (WCC: labels only shrink; SSSP /
// BFS: distances only shrink) pass; fixed-point value iterations (PageRank)
// oscillate and fail — which is exactly why they need Theorem 1 instead.

#include <cstdint>
#include <vector>

#include "engine/observer.hpp"
#include "util/types.hpp"

namespace ndg {

class MonotonicityChecker final : public AccessObserver {
 public:
  /// Decodes a raw 8-byte edge slot to the comparable value.
  using Projection = double (*)(std::uint64_t slot_value);

  enum class Direction { kConstant, kNonIncreasing, kNonDecreasing, kNone };

  MonotonicityChecker(EdgeId num_edges, Projection projection);

  /// Records the pre-run value of an edge so the first write is compared
  /// against the algorithm's initialization (e.g. WCC's "infinite" label).
  void set_baseline(EdgeId e, std::uint64_t slot_value);

  void on_write(EdgeId e, VertexId writer, std::uint32_t iteration,
                std::uint64_t slot_value) override;

  [[nodiscard]] std::uint64_t increases() const { return increases_; }
  [[nodiscard]] std::uint64_t decreases() const { return decreases_; }
  [[nodiscard]] Direction direction() const;
  [[nodiscard]] bool monotonic() const {
    return increases_ == 0 || decreases_ == 0;
  }

 private:
  Projection projection_;
  std::vector<double> last_;
  std::uint64_t increases_ = 0;
  std::uint64_t decreases_ = 0;
};

}  // namespace ndg
