#pragma once
// Error analysis for nondeterministic fixed-point results — the paper's §VII
// future-work item "more discussions (e.g., on precision, range of errors) on
// the variations in the results of fixed point iteration algorithms".
//
// Given a trusted baseline (deterministic run or reference solver) and a set
// of nondeterministic runs, reports the pooled absolute/relative error
// percentiles, the worst per-vertex spread across runs, and how the error
// concentrates by rank band (does nondeterminism perturb the head or the
// tail of the ranking?).

#include <cstddef>
#include <span>
#include <vector>

namespace ndg {

struct ErrorBands {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct ErrorAnalysis {
  /// |run_i[v] - baseline[v]| pooled over all runs and vertices.
  ErrorBands abs_error;
  /// Same, divided by max(|baseline[v]|, floor).
  ErrorBands rel_error;
  /// max over vertices of (max_i run_i[v] - min_i run_i[v]): the spread the
  /// nondeterminism alone introduces, independent of the baseline.
  double max_spread = 0.0;
  /// Vertices on which every run equals the baseline bit-for-bit.
  std::size_t exact_vertices = 0;
  /// Mean absolute error within each rank band of the baseline ranking
  /// (head = top 1%, torso = next 9%, tail = the rest).
  double head_mean_abs = 0.0;
  double torso_mean_abs = 0.0;
  double tail_mean_abs = 0.0;
};

/// `runs` must all have baseline.size() entries. `rel_floor` guards the
/// relative error against near-zero baselines.
ErrorAnalysis analyze_errors(std::span<const double> baseline,
                             const std::vector<std::vector<double>>& runs,
                             double rel_floor = 1e-12);

}  // namespace ndg
