#pragma once
// Eligibility analysis — the "key ring" the paper's related-work section says
// is missing: given a vertex program, decide whether one of the paper's two
// sufficient conditions licenses nondeterministic execution.
//
//   Theorem 1: converges under the synchronous (BSP) model AND produces only
//              read-write conflicts on edges  =>  NE-safe.
//   Theorem 2: converges under deterministic asynchronous execution AND is
//              monotonic  =>  NE-safe even with write-write conflicts.
//
// The analysis runs the program (a) under BSP and (b) under the deterministic
// asynchronous engine instrumented with the ConflictTracer and the
// MonotonicityChecker, then applies the theorems. Both conditions are
// *sufficient*, not necessary — kNotProven means "no guarantee from this
// paper", not "unsafe".

#include <string>

#include "atomics/edge_data.hpp"
#include "core/monotonicity.hpp"
#include "engine/bsp.hpp"
#include "engine/conflict_tracer.hpp"
#include "engine/deterministic.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

enum class EligibilityVerdict {
  kTheorem1,   // fixed-point style: RW conflicts only, BSP-convergent
  kTheorem2,   // traversal style: monotonic, async-convergent
  kNotProven,  // neither sufficient condition applies
};

[[nodiscard]] const char* to_string(EligibilityVerdict v);

/// Compact machine-friendly form ("theorem-1" / "theorem-2" / "not-proven")
/// for table cells and JSON manifests.
[[nodiscard]] const char* verdict_short(EligibilityVerdict v);

struct EligibilityReport {
  std::string algorithm;
  bool bsp_converges = false;
  bool async_converges = false;
  ConflictReport conflicts;
  bool claimed_monotonic = false;
  bool observed_monotonic = false;
  MonotonicityChecker::Direction direction = MonotonicityChecker::Direction::kNone;
  bool theorem1_applies = false;
  bool theorem2_applies = false;
  EligibilityVerdict verdict = EligibilityVerdict::kNotProven;

  /// Multi-line human-readable summary.
  [[nodiscard]] std::string describe() const;
};

namespace detail {

EligibilityVerdict decide(EligibilityReport& r);

}  // namespace detail

/// Runs the full analysis on `prog` over `g`. The program is re-initialized
/// before each phase, so any program state is reset; `prog` is left in the
/// state of the final (instrumented deterministic) run.
template <VertexProgram Program>
EligibilityReport analyze_eligibility(const Graph& g, Program& prog,
                                      std::size_t max_iterations = 100000) {
  using ED = typename Program::EdgeData;
  EligibilityReport report;
  report.algorithm = prog.name();
  report.claimed_monotonic = Program::kMonotonic;

  EdgeDataArray<ED> edges(g.num_edges());

  // Phase 1: Theorem 1 premise — synchronous-model convergence.
  prog.init(g, edges);
  report.bsp_converges = run_bsp(g, prog, edges, max_iterations).converged;

  // Phase 2: instrumented deterministic asynchronous run — conflict classes
  // (Section III) and observed monotonicity (Theorem 2 premise).
  prog.init(g, edges);
  ConflictTracer tracer(g.num_edges());
  MonotonicityChecker checker(g.num_edges(), +[](std::uint64_t slot) {
    return Program::project(ndg::detail::from_slot<ED>(slot));
  });
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    checker.set_baseline(e, ndg::detail::to_slot(edges.get(e)));
  }
  CompositeObserver observer(&tracer, &checker);
  report.async_converges =
      run_deterministic(g, prog, edges, max_iterations, &observer).converged;

  report.conflicts = tracer.report();
  report.observed_monotonic = checker.monotonic();
  report.direction = checker.direction();
  report.verdict = detail::decide(report);
  return report;
}

}  // namespace ndg
