#include "core/error_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "core/difference_degree.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace ndg {

namespace {

ErrorBands bands(std::vector<double> samples) {
  ErrorBands b;
  if (samples.empty()) return b;
  b.p50 = percentile(samples, 50);
  b.p90 = percentile(samples, 90);
  b.p99 = percentile(samples, 99);
  b.max = *std::max_element(samples.begin(), samples.end());
  return b;
}

}  // namespace

ErrorAnalysis analyze_errors(std::span<const double> baseline,
                             const std::vector<std::vector<double>>& runs,
                             double rel_floor) {
  ErrorAnalysis out;
  const std::size_t n = baseline.size();
  for ([[maybe_unused]] const auto& run : runs) {
    NDG_ASSERT_MSG(run.size() == n, "run/baseline size mismatch");
  }
  if (n == 0 || runs.empty()) return out;

  std::vector<double> abs_errs;
  std::vector<double> rel_errs;
  abs_errs.reserve(n * runs.size());
  rel_errs.reserve(n * runs.size());

  std::vector<double> per_vertex_mean_abs(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    double lo = runs[0][v];
    double hi = runs[0][v];
    bool exact = true;
    for (const auto& run : runs) {
      const double err = std::abs(run[v] - baseline[v]);
      abs_errs.push_back(err);
      rel_errs.push_back(err / std::max(std::abs(baseline[v]), rel_floor));
      per_vertex_mean_abs[v] += err;
      lo = std::min(lo, run[v]);
      hi = std::max(hi, run[v]);
      exact = exact && run[v] == baseline[v];
    }
    per_vertex_mean_abs[v] /= static_cast<double>(runs.size());
    out.max_spread = std::max(out.max_spread, hi - lo);
    if (exact) ++out.exact_vertices;
  }

  out.abs_error = bands(std::move(abs_errs));
  out.rel_error = bands(std::move(rel_errs));

  // Rank-band means over the baseline's own ranking.
  const auto ranking = rank_vertices(baseline);
  const std::size_t head = std::max<std::size_t>(1, n / 100);
  const std::size_t torso = std::max<std::size_t>(head + 1, n / 10);
  RunningStats head_s;
  RunningStats torso_s;
  RunningStats tail_s;
  for (std::size_t r = 0; r < n; ++r) {
    const double err = per_vertex_mean_abs[ranking[r]];
    if (r < head) {
      head_s.add(err);
    } else if (r < torso) {
      torso_s.add(err);
    } else {
      tail_s.add(err);
    }
  }
  out.head_mean_abs = head_s.mean();
  out.torso_mean_abs = torso_s.mean();
  out.tail_mean_abs = tail_s.mean();
  return out;
}

}  // namespace ndg
