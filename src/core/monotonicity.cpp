#include "core/monotonicity.hpp"

#include "util/assert.hpp"

namespace ndg {

MonotonicityChecker::MonotonicityChecker(EdgeId num_edges, Projection projection)
    : projection_(projection), last_(num_edges, 0.0) {
  NDG_ASSERT(projection_ != nullptr);
}

void MonotonicityChecker::set_baseline(EdgeId e, std::uint64_t slot_value) {
  NDG_ASSERT(e < last_.size());
  last_[e] = projection_(slot_value);
}

void MonotonicityChecker::on_write(EdgeId e, VertexId /*writer*/,
                                   std::uint32_t /*iteration*/,
                                   std::uint64_t slot_value) {
  NDG_ASSERT(e < last_.size());
  const double v = projection_(slot_value);
  if (v > last_[e]) {
    ++increases_;
  } else if (v < last_[e]) {
    ++decreases_;
  }
  last_[e] = v;
}

MonotonicityChecker::Direction MonotonicityChecker::direction() const {
  if (increases_ == 0 && decreases_ == 0) return Direction::kConstant;
  if (increases_ == 0) return Direction::kNonIncreasing;
  if (decreases_ == 0) return Direction::kNonDecreasing;
  return Direction::kNone;
}

}  // namespace ndg
