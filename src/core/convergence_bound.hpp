#pragma once
// Convergence-speed bounds — the paper's §VII future-work item "theoretical
// analyses of the convergence speed (e.g., in amount of iterations) of graph
// algorithms by nondeterministic executions".
//
// The Theorem 1/2 proofs hinge on a dependency chain v_0, v_1, ..., v_{k-1}
// whose result must reach v. Per iteration the chain advances at least one
// hop (the f(v_i) ≺/≻/∥ f(v_{i+1}) case analysis), and a write-write
// corruption costs at most two extra iterations to repair (the Theorem 2
// walk-through). That yields checkable iteration bounds:
//
//   traversal algorithms, synchronous or nondeterministic, RW conflicts only:
//       iterations <= chain_depth + 3
//       (value wave + one stale-edge cleanup wave + one drain round)
//   monotonic algorithms with WW conflicts (Theorem 2 recovery):
//       iterations <= 3 * chain_depth + 4   (each hop may pay the
//                                            corrupt/correct/re-read cycle)
//
// where chain_depth is the longest shortest-path chain the result must
// travel: for label/distance propagation that is the undirected eccentricity
// of the value's origin, maximized over components. The bench
// ablation_convergence_speed checks measured iterations against these.

#include <cstddef>

#include "graph/graph.hpp"

namespace ndg {

struct ConvergenceBound {
  /// max over weakly connected components of the BFS depth from the
  /// component's minimum-label vertex (the WCC value origin).
  std::size_t chain_depth = 0;
  /// chain_depth + 3: bound for RW-only traversal (and synchronous WCC).
  std::size_t rw_bound = 0;
  /// 3 * chain_depth + 4: bound with write-write recovery (Theorem 2).
  std::size_t ww_bound = 0;
};

/// Computes the chain depth by BFS (ignoring edge direction) from each
/// component's minimum vertex id — the label that must reach everyone in
/// min-label propagation.
ConvergenceBound wcc_convergence_bound(const Graph& g);

/// Chain depth for a single-source traversal: undirected-or-directed BFS
/// depth from `source` (directed = follow out-edges only, matching BFS/SSSP).
std::size_t traversal_chain_depth(const Graph& g, VertexId source);

}  // namespace ndg
