#pragma once
// Result-variance metrics for fixed-point algorithms (Section V-C).
//
// The paper compares two runs' results by ranking the vertices (pages) by
// computed value and finding the *difference degree*: the minimal rank index
// at which the two rankings name different vertices. "For PageRank, a bigger
// difference degree means that the variation happens in pages of less
// significance, i.e., bigger is better."

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace ndg {

/// Vertices ordered by value descending; ties broken by ascending vertex id
/// (a deterministic tiebreak so the metric itself adds no noise).
std::vector<VertexId> rank_vertices(std::span<const double> values);

/// Minimal index where the two rankings differ; returns the common size if
/// they are identical (i.e. "no difference within the top |V|").
std::size_t difference_degree(std::span<const VertexId> ranking_a,
                              std::span<const VertexId> ranking_b);

/// Convenience: rank both value vectors and compare.
std::size_t difference_degree_values(std::span<const double> a,
                                     std::span<const double> b);

/// Value-space error metrics between two runs (future-work item of §VII:
/// "more discussions on precision, range of errors").
struct ValueDelta {
  double max_abs = 0.0;  // L∞
  double mean_abs = 0.0; // L1 / n
};
ValueDelta value_delta(std::span<const double> a, std::span<const double> b);

}  // namespace ndg
