#pragma once
// Failure injection: "amnesia faults" for the racy engines.
//
// An amnesia fault replaces a write with the edge's INITIAL value — the
// moral equivalent of a lost update whose slot later gets re-read from a
// stale replica, a dropped message followed by a reset, or a cache line
// rolled back. For the monotone lattice algorithms (Theorem 2), the initial
// value is the lattice top, so an amnesia fault moves an edge *up* the
// lattice — strictly worse than any race the paper's model can produce
// (races only replay values some update legitimately wrote).
//
// The self-stabilization property the tests establish: if faults are
// TRANSIENT (a finite injection budget) and the algorithm is re-driven to
// quiescence afterwards (one full re-activation pass), monotone algorithms
// still converge to the exact fixed point. That is Theorem 2's recovery
// argument pushed past the paper's own fault model.
//
// Usage: wrap any atomicity policy and pass it to
// run_nondeterministic_with_policy; share one FaultPlan across workers.

#include <atomic>
#include <vector>

#include "atomics/access_policy.hpp"
#include "util/rng.hpp"

namespace ndg {

/// Shared, thread-safe injection state: a budget of faults and a seeded
/// decision stream. One instance per experiment.
class FaultPlan {
 public:
  /// `rate_percent` of writes are faulted until `budget` faults have fired.
  template <EdgePod T>
  FaultPlan(const EdgeDataArray<T>& initial, std::uint64_t budget,
            unsigned rate_percent, std::uint64_t seed)
      : budget_(budget), rate_percent_(rate_percent), seed_(seed),
        initial_(initial.size()) {
    for (EdgeId e = 0; e < initial.size(); ++e) {
      initial_[e] = detail::to_slot(initial.get(e));
    }
  }

  /// Decides whether this write is faulted; if so returns true and consumes
  /// budget. Thread-safe, deterministic in (seed, global decision index).
  bool should_fault(EdgeId e) {
    if (budget_.load(std::memory_order_relaxed) == 0) return false;
    const std::uint64_t n = decisions_.fetch_add(1, std::memory_order_relaxed);
    SplitMix64 sm(seed_ ^ (n * 0x9e3779b97f4a7c15ULL) ^ e);
    if (sm.next() % 100 >= rate_percent_) return false;
    // Claim one unit of budget; losing the race means no fault.
    std::uint64_t cur = budget_.load(std::memory_order_relaxed);
    while (cur > 0) {
      if (budget_.compare_exchange_weak(cur, cur - 1,
                                        std::memory_order_relaxed)) {
        injected_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::uint64_t initial_slot(EdgeId e) const {
    return initial_[e];
  }
  [[nodiscard]] std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> budget_;
  const unsigned rate_percent_;
  const std::uint64_t seed_;
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> injected_{0};
  std::vector<std::uint64_t> initial_;
};

/// Policy wrapper: forwards reads; writes may be replaced by the edge's
/// initial value per the shared FaultPlan. RMW primitives fault their
/// embedded write the same way.
template <typename Inner>
struct AmnesiaAccess {
  Inner inner;
  FaultPlan* plan = nullptr;

  template <EdgePod T>
  [[nodiscard]] T read(const EdgeDataArray<T>& a, EdgeId e) const {
    return inner.read(a, e);
  }

  template <EdgePod T>
  void write(EdgeDataArray<T>& a, EdgeId e, T v) const {
    if (plan->should_fault(e)) {
      inner.write(a, e, detail::from_slot<T>(plan->initial_slot(e)));
    } else {
      inner.write(a, e, v);
    }
  }

  template <EdgePod T>
  T exchange(EdgeDataArray<T>& a, EdgeId e, T v) const {
    const T old = inner.exchange(a, e, v);
    if (plan->should_fault(e)) {
      inner.write(a, e, detail::from_slot<T>(plan->initial_slot(e)));
    }
    return old;
  }

  template <EdgePod T, typename Fn>
  void accumulate(EdgeDataArray<T>& a, EdgeId e, Fn fn) const {
    if (plan->should_fault(e)) {
      inner.write(a, e, detail::from_slot<T>(plan->initial_slot(e)));
    } else {
      inner.accumulate(a, e, fn);
    }
  }
};

}  // namespace ndg
