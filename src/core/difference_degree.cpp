#include "core/difference_degree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace ndg {

std::vector<VertexId> rank_vertices(std::span<const double> values) {
  std::vector<VertexId> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (values[a] != values[b]) return values[a] > values[b];
    return a < b;
  });
  return order;
}

std::size_t difference_degree(std::span<const VertexId> ranking_a,
                              std::span<const VertexId> ranking_b) {
  NDG_ASSERT_MSG(ranking_a.size() == ranking_b.size(),
                 "rankings must cover the same vertex set");
  for (std::size_t i = 0; i < ranking_a.size(); ++i) {
    if (ranking_a[i] != ranking_b[i]) return i;
  }
  return ranking_a.size();
}

std::size_t difference_degree_values(std::span<const double> a,
                                     std::span<const double> b) {
  const auto ra = rank_vertices(a);
  const auto rb = rank_vertices(b);
  return difference_degree(ra, rb);
}

ValueDelta value_delta(std::span<const double> a, std::span<const double> b) {
  NDG_ASSERT(a.size() == b.size());
  ValueDelta d;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = std::abs(a[i] - b[i]);
    d.max_abs = std::max(d.max_abs, diff);
    sum += diff;
  }
  d.mean_abs = a.empty() ? 0.0 : sum / static_cast<double>(a.size());
  return d;
}

}  // namespace ndg
