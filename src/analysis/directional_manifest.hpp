#pragma once
// DirectionalManifest — a program's declared access shape PER DIRECTION, the
// input to the direction-eligibility question (docs/ANALYSIS.md):
//
//   which directions can this algorithm legally run racy in, and may the
//   engine switch between them mid-run?
//
// Every GAS program here has two natural shapes. The pull entry point
// update(v) gathers over own in-edges and publishes over own out-edges with
// plain conditional writes; the optional push entry point update_push(v)
// publishes with atomic-RMW folds (ctx.accumulate — which schedules, so the
// Section II task rule holds by construction). Each side is an ordinary
// AccessManifest, so the Theorem 1/2 premises derive per direction exactly
// as in static_eligibility.hpp.
//
// The genuinely new obligation is the MIXED schedule: the direction-
// optimizing engine (engine/direction.hpp) picks a direction per iteration,
// and the delayed/async compositions blur iteration boundaries, so the
// switchable verdict must license a schedule where some updates run pulled
// and some pushed concurrently. Two isolated verdicts do not give that: an
// edge (s, t) in a mixed schedule can be written by whichever of f_pull(s) /
// f_push(s) runs and read or written by whichever of f_pull(t) / f_push(t)
// runs, so the conflict classes of the mix are those of the slot-wise UNION
// of the two manifests — which can exhibit write-write conflicts neither
// direction has alone (pull writing out-edges, push writing in-edges).
// merged_manifest() builds that union shape; kSwitchable holds only when the
// merged manifest ALSO passes a theorem, the cross-direction WW/RW
// interference check the per-direction verdicts cannot perform.

#include <string>

#include "analysis/access_manifest.hpp"
#include "analysis/static_eligibility.hpp"
#include "atomics/access_policy.hpp"
#include "core/eligibility.hpp"
#include "engine/direction_mode.hpp"

namespace ndg {

/// One executable direction of a program. Distinct from the engine-facing
/// DirectionMode (engine/direction_mode.hpp), which adds the kAuto request.
enum class Direction : std::uint8_t { kPull = 0, kPush = 1 };

[[nodiscard]] const char* to_string(Direction d);

/// The pull + push AccessManifest pair. The push side is optional — a
/// pull-only program simply never declares kPushManifest, and every
/// push-direction verdict collapses to kNotProven.
struct DirectionalManifest {
  AccessManifest pull{};
  AccessManifest push{};
  bool has_push = false;
};

/// Slot-wise union: the access shape a mixed pull/push schedule can exhibit.
[[nodiscard]] constexpr SlotAccess merge_slots(SlotAccess a, SlotAccess b) {
  return static_cast<SlotAccess>(static_cast<std::uint8_t>(a) |
                                 static_cast<std::uint8_t>(b));
}

/// The manifest of the MIXED schedule (some vertices pulled, some pushed,
/// concurrently). Slots union (either direction's access can occur on either
/// endpoint's update); the task rule must hold in BOTH directions (a single
/// silent write anywhere breaks the scheduling argument for the whole mix);
/// the monotone claim survives only when both directions agree on it
/// (Theorem 2's recovery argument needs ONE direction of travel — a
/// non-increasing pull racing a non-decreasing push has no envelope to
/// recover through); RMW is possible whenever either side performs one; the
/// convergence claims are conjunctions because the mix's conflict-free
/// projections interleave both update bodies, so each body's claim is
/// needed; input-dependence is inherited from either side.
[[nodiscard]] constexpr AccessManifest merged_manifest(
    const DirectionalManifest& dm) {
  AccessManifest m;
  m.in_edges = merge_slots(dm.pull.in_edges, dm.push.in_edges);
  m.out_edges = merge_slots(dm.pull.out_edges, dm.push.out_edges);
  m.rmw = dm.pull.rmw || dm.push.rmw;
  m.follows_task_rule = dm.pull.follows_task_rule && dm.push.follows_task_rule;
  m.monotone = (dm.pull.monotone == dm.push.monotone) ? dm.pull.monotone
                                                      : MonotoneClaim::kNone;
  m.bsp_convergent = dm.pull.bsp_convergent && dm.push.bsp_convergent;
  m.async_convergent = dm.pull.async_convergent && dm.push.async_convergent;
  m.input_dependent_convergence = dm.pull.input_dependent_convergence ||
                                  dm.push.input_dependent_convergence;
  return m;
}

/// Theorem 1/2 verdict for one direction in isolation (push side of a
/// pull-only program: kNotProven — there is nothing to prove about).
[[nodiscard]] constexpr EligibilityVerdict direction_verdict(
    const DirectionalManifest& dm, Direction d) {
  if (d == Direction::kPush && !dm.has_push) {
    return EligibilityVerdict::kNotProven;
  }
  const AccessManifest& m = (d == Direction::kPush) ? dm.push : dm.pull;
  return static_verdict_given(m, m.bsp_convergent, m.async_convergent);
}

/// Verdict for the mixed schedule: the cross-direction interference check.
[[nodiscard]] constexpr EligibilityVerdict mixed_verdict(
    const DirectionalManifest& dm) {
  if (!dm.has_push) return EligibilityVerdict::kNotProven;
  const AccessManifest m = merged_manifest(dm);
  return static_verdict_given(m, m.bsp_convergent, m.async_convergent);
}

/// kSwitchable: both directions proven AND the mixed schedule proven — the
/// engine may flip direction per iteration (or per vertex) under NE.
[[nodiscard]] constexpr bool direction_switchable(
    const DirectionalManifest& dm) {
  return direction_verdict(dm, Direction::kPull) !=
             EligibilityVerdict::kNotProven &&
         direction_verdict(dm, Direction::kPush) !=
             EligibilityVerdict::kNotProven &&
         mixed_verdict(dm) != EligibilityVerdict::kNotProven;
}

/// Why `d` is not proven for this program ("" when it is proven): names the
/// failing theorem premises so refusals are actionable. Runtime counterpart
/// of assert_direction (analysis/direction_eligibility.hpp).
[[nodiscard]] std::string direction_refusal_reason(const DirectionalManifest& dm,
                                                   Direction d);

/// Why the program is not kSwitchable ("" when it is): a failing single
/// direction is reported first; otherwise the cross-direction interference
/// the merged manifest exhibits (the reason two clean isolated verdicts can
/// still refuse switching).
[[nodiscard]] std::string switchability_refusal_reason(
    const DirectionalManifest& dm);

/// Outcome of gating a requested --direction against the static verdicts and
/// the atomicity method (push sides declaring RMW need a policy with atomic
/// RMW — the runtime twin of assert_manifest_policy).
struct DirectionResolution {
  bool ok = false;
  /// The mode the engine should actually run (meaningful when ok).
  DirectionMode effective = DirectionMode::kPull;
  /// kAuto was requested but only one direction is proven: the engine runs
  /// pinned to `effective`, and `reason` carries the pinning note.
  bool pinned = false;
  /// Refusal reason (!ok) or pinning note (ok && pinned); empty otherwise.
  std::string reason;
};

[[nodiscard]] DirectionResolution resolve_direction(
    const DirectionalManifest& dm, DirectionMode requested,
    AtomicityMode atomicity = AtomicityMode::kRelaxed);

}  // namespace ndg
