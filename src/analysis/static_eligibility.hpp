#pragma once
// StaticEligibility — the compile-time half of the paper's title question.
//
// Given a program's AccessManifest, derive the Theorem 1/2 premises without
// running anything:
//
//   Theorem 1 premise ("RW conflicts only"): no edge can be written by two
//   distinct updates — i.e. writes are confined to one side of the manifest —
//   plus the (declared) synchronous-model convergence.
//
//   Theorem 2 premise ("WW possible but monotone"): a declared monotone
//   direction plus (declared) deterministic-async convergence.
//
// The result is the same EligibilityVerdict the dynamic analysis yields, as
// a static_assert-able constant. What static analysis can and cannot prove:
// conflict classes follow from the access shape exactly (IF the manifest is
// truthful — VerifyingAccess bridges that gap at runtime), but convergence
// is a dynamic property, so the manifest CLAIMS it and the measured analysis
// validates the claim. static_verdict_given() re-evaluates the manifest
// against *observed* premises so static and dynamic verdicts can be compared
// like-for-like (the `agreement` column of bench/eligibility_report).

#include <concepts>

#include "analysis/access_manifest.hpp"
#include "core/eligibility.hpp"

namespace ndg {

/// A vertex program that declares its access shape.
template <typename P>
concept ManifestedProgram = requires {
  { P::kManifest } -> std::convertible_to<AccessManifest>;
};

/// Does `Policy` provide genuinely atomic RMW primitives? Declared by each
/// policy (atomics/access_policy.hpp); AlignedAccess — the paper's method
/// (2) — does not: an aligned word gives atomic loads/stores only.
template <typename Policy>
inline constexpr bool kPolicyAtomicRmw = Policy::kAtomicRmw;

/// Evaluates the manifest under explicit convergence premises. Pass the
/// manifest's own claims for the fully static verdict, or the measured
/// bsp/async convergence bits for the conditioned verdict the agreement
/// check compares against the dynamic one.
[[nodiscard]] constexpr EligibilityVerdict static_verdict_given(
    const AccessManifest& m, bool bsp_converges, bool async_converges) {
  // Both theorems' convergence arguments assume the Section II
  // task-generation rule; a program stepping outside it gets no guarantee.
  const bool theorem1 = bsp_converges && !ww_possible(m) && m.follows_task_rule;
  const bool theorem2 = async_converges && m.monotone != MonotoneClaim::kNone &&
                        m.follows_task_rule;
  // Same priority as the dynamic decide(): Theorem 1 first.
  if (theorem1) return EligibilityVerdict::kTheorem1;
  if (theorem2) return EligibilityVerdict::kTheorem2;
  return EligibilityVerdict::kNotProven;
}

/// The compile-time evaluator: every member is a constant expression, so
/// callers can `static_assert(StaticEligibility<P>::kVerdict == ...)`.
template <ManifestedProgram P>
struct StaticEligibility {
  static constexpr AccessManifest kManifest = P::kManifest;

  static constexpr bool kWwPossible = ww_possible(kManifest);
  static constexpr bool kRwPossible = rw_possible(kManifest);

  static constexpr bool kTheorem1 = kManifest.bsp_convergent &&
                                    !kWwPossible && kManifest.follows_task_rule;
  static constexpr bool kTheorem2 = kManifest.async_convergent &&
                                    kManifest.monotone != MonotoneClaim::kNone &&
                                    kManifest.follows_task_rule;

  /// The verdict under the manifest's own convergence claims.
  static constexpr EligibilityVerdict kVerdict =
      static_verdict_given(kManifest, kManifest.bsp_convergent,
                           kManifest.async_convergent);

  /// True when the verdict is conditional on input (the convergence claims
  /// do not hold universally — label propagation's bipartite oscillation).
  static constexpr bool kConditional = kManifest.input_dependent_convergence;

  /// Warm-start licensing verdict for the streaming gate
  /// (dyn/eligibility_gate.hpp): whenever the Theorem 2 premises hold the
  /// gate must route through the per-mutation monotone-envelope check even
  /// if Theorem 1 also applies — a monotone program restarted from a state
  /// below a RAISED fixed point (an edge delete) silently under-converges.
  static constexpr EligibilityVerdict kWarmStartVerdict =
      kTheorem2 ? EligibilityVerdict::kTheorem2 : kVerdict;

  /// Can this manifest run under `Policy` at all? Method (2) — plain
  /// aligned access — cannot make accumulate/exchange atomic, so an RMW
  /// manifest rejects it.
  template <typename Policy>
  static constexpr bool kCompatibleWith = !kManifest.rmw ||
                                          kPolicyAtomicRmw<Policy>;
};

/// Compile-time gate at the point where a program meets a policy: a manifest
/// declaring RMW writes fails to compile under AlignedAccess. Engines that
/// deliberately pair the two for ablation (measuring the push-mode breakage
/// the paper warns about) simply do not call this; production entry points
/// and user code should.
template <ManifestedProgram P, typename Policy>
constexpr void assert_manifest_policy() {
  static_assert(
      StaticEligibility<P>::template kCompatibleWith<Policy>,
      "manifest declares read-modify-write edge access (accumulate/exchange) "
      "but the access policy cannot make RMW atomic: the paper's method (2) "
      "AlignedAccess provides atomic individual loads/stores only (Section "
      "III), so racing drains/combines would lose updates. Use LockedAccess, "
      "RelaxedAtomicAccess, or SeqCstAccess.");
}

}  // namespace ndg
