#pragma once
// StaticDirectionEligibility — the compile-time half of the direction
// question (docs/ANALYSIS.md). Where StaticEligibility<P> answers "may this
// program run racy at all?", this evaluator answers three per-program
// questions, every answer a constant expression:
//
//   kPullVerdict   — may it run racy in pull mode?
//   kPushVerdict   — may it run racy in push mode? (kNotProven for
//                    pull-only programs)
//   kSwitchable    — may the engine MIX directions in one racy run?
//
// kSwitchable is strictly stronger than "both directions proven": it also
// requires the merged (slot-wise union) manifest to pass a theorem — the
// cross-direction WW/RW interference check in directional_manifest.hpp.
// assert_direction / assert_switchable are the static_assert gates the
// compile-fail tests (tests/compile_fail/direction_*) exercise.

#include <concepts>

#include "analysis/directional_manifest.hpp"
#include "analysis/static_eligibility.hpp"

namespace ndg {

/// A manifested program that additionally declares a push entry point with
/// its own access shape: `void update_push(VertexId, Ctx&)` plus a
/// `kPushManifest` describing what that entry point touches. ndg_lint's
/// missing-direction-manifest rule enforces that the two always travel
/// together; the concept only needs the manifest (update_push itself is
/// checked at engine instantiation, like update()).
template <typename P>
concept PushCapableProgram = ManifestedProgram<P> && requires {
  { P::kPushManifest } -> std::convertible_to<AccessManifest>;
};

/// The DirectionalManifest of P, assembled from its declarations. Pull-only
/// programs get has_push = false and a defaulted push side.
template <ManifestedProgram P>
[[nodiscard]] constexpr DirectionalManifest directional_manifest_of() {
  DirectionalManifest dm;
  dm.pull = P::kManifest;
  if constexpr (PushCapableProgram<P>) {
    dm.push = P::kPushManifest;
    dm.has_push = true;
  }
  return dm;
}

template <ManifestedProgram P>
struct StaticDirectionEligibility {
  static constexpr DirectionalManifest kManifest = directional_manifest_of<P>();
  static constexpr bool kHasPush = kManifest.has_push;

  /// Independent Theorem 1/2 verdicts per direction.
  static constexpr EligibilityVerdict kPullVerdict =
      direction_verdict(kManifest, Direction::kPull);
  static constexpr EligibilityVerdict kPushVerdict =
      direction_verdict(kManifest, Direction::kPush);

  /// The access shape and verdict of a mixed pull/push schedule.
  static constexpr AccessManifest kMixedManifest = merged_manifest(kManifest);
  static constexpr EligibilityVerdict kMixedVerdict = mixed_verdict(kManifest);

  /// All three proven: the engine may switch direction per iteration.
  static constexpr bool kSwitchable = direction_switchable(kManifest);

  /// Any consulted verdict being input-conditional taints the whole answer.
  static constexpr bool kConditional =
      kManifest.pull.input_dependent_convergence ||
      (kHasPush && kManifest.push.input_dependent_convergence);
};

/// Compile-time gate at the point where a program meets a requested
/// direction: selecting an unproven direction fails to compile with the
/// theorem-premise story. The runtime twin (--direction=...) is
/// resolve_direction() in directional_manifest.hpp.
template <ManifestedProgram P, Direction D>
constexpr void assert_direction() {
  if constexpr (D == Direction::kPull) {
    static_assert(
        StaticDirectionEligibility<P>::kPullVerdict !=
            EligibilityVerdict::kNotProven,
        "pull direction is not proven eligible for nondeterministic "
        "execution: the pull manifest satisfies neither Theorem 1 (no WW + "
        "BSP convergence + task rule) nor Theorem 2 (monotone + async "
        "convergence + task rule). See docs/ANALYSIS.md (direction "
        "eligibility).");
  } else {
    static_assert(
        StaticDirectionEligibility<P>::kPushVerdict !=
            EligibilityVerdict::kNotProven,
        "push direction is not proven eligible for nondeterministic "
        "execution: either the program is pull-only (no kPushManifest / "
        "update_push declared) or its push manifest satisfies neither "
        "Theorem 1 nor Theorem 2. See docs/ANALYSIS.md (direction "
        "eligibility).");
  }
}

/// Compile-time gate for per-iteration direction switching (and for any
/// schedule that mixes directions within an iteration).
template <ManifestedProgram P>
constexpr void assert_switchable() {
  static_assert(
      StaticDirectionEligibility<P>::kSwitchable,
      "direction switching is not proven safe: both per-direction verdicts "
      "AND the merged-manifest verdict (the cross-direction WW/RW "
      "interference check over a mixed pull/push schedule) must pass a "
      "theorem. See docs/ANALYSIS.md (direction eligibility).");
}

}  // namespace ndg
