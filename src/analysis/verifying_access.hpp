#pragma once
// VerifyingAccess<Inner> — an access-policy decorator that enforces a
// program's declared AccessManifest at runtime, bridging the static claim
// (analysis/static_eligibility.hpp derives verdicts from the manifest alone)
// to the dynamic ConflictTracer ground truth: if a run under VerifyingAccess
// is violation-free, every edge access the tracer could ever observe is
// inside the declared shape, so the statically derived conflict classes are
// sound for that execution.
//
// The decorator wraps any real policy (so verification composes with all
// four atomicity methods) and checks, per access, that
//   * the edge is incident to the vertex being updated (the Section II
//     update scope — update(v) may only touch v's incident edges),
//   * the incident side (own in-edge / own out-edge) declares the access
//     kind (read / write), and
//   * compound RMWs (exchange/accumulate) are declared (.rmw) AND the inner
//     policy can actually make them atomic (the runtime twin of the
//     compile-time assert_manifest_policy check — reachable when the policy
//     is chosen at runtime, e.g. the ablation benches pairing push-mode
//     programs with AlignedAccess on purpose).
//
// Violations are recorded, never thrown: the run completes and the caller
// fails it afterwards (ManifestCheck::ok), so a single report lists every
// undeclared access shape instead of the first.
//
// The decorator learns the vertex under update through the begin_update(v)
// hook the engine contexts invoke from begin(); enforcement is thread-safe
// (contexts copy the policy per worker, the enforcer is shared and atomic).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/access_manifest.hpp"
#include "atomics/edge_data.hpp"
#include "graph/graph.hpp"
#include "util/types.hpp"

namespace ndg {

struct ManifestViolation {
  enum class Kind : std::uint8_t {
    kUndeclaredRead,      // read on a side whose manifest slot lacks kRead
    kUndeclaredWrite,     // write on a side whose manifest slot lacks kWrite
    kForeignEdge,         // edge not incident to the vertex under update
    kUndeclaredRmw,       // exchange/accumulate without .rmw = true
    kRmwNonAtomicPolicy,  // declared RMW but inner policy has no atomic RMW
  };

  Kind kind;
  EdgeId edge;
  VertexId vertex;

  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] const char* to_string(ManifestViolation::Kind k);

/// Outcome of a manifest-enforced run (see validate_manifest in
/// analysis/validate.hpp and the registry's validate closure).
struct ManifestCheck {
  std::uint64_t accesses = 0;
  std::uint64_t violations = 0;
  /// First kMaxSamples violations, for diagnostics.
  std::vector<ManifestViolation> samples;

  [[nodiscard]] bool ok() const { return violations == 0; }
  [[nodiscard]] std::string describe() const;
};

/// Shared enforcement state: the graph (for incidence queries), the declared
/// manifest, and the violation log. One enforcer per verified run; the
/// VerifyingAccess copies engines hand to worker threads all point here.
class ManifestEnforcer {
 public:
  static constexpr std::size_t kMaxSamples = 16;

  ManifestEnforcer(const Graph& g, const AccessManifest& m)
      : g_(&g), manifest_(m) {}

  [[nodiscard]] const AccessManifest& manifest() const { return manifest_; }

  void count_access() { accesses_.fetch_add(1, std::memory_order_relaxed); }

  void record(ManifestViolation::Kind kind, EdgeId e, VertexId v) {
    violations_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.size() < kMaxSamples) samples_.push_back({kind, e, v});
  }

  /// Classifies one access and records any violation. `rmw` marks
  /// exchange/accumulate; `inner_atomic_rmw` is the wrapped policy's trait.
  void check(EdgeId e, VertexId v, bool is_write, bool rmw,
             bool inner_atomic_rmw) {
    count_access();
    if (rmw) {
      if (!manifest_.rmw) record(ManifestViolation::Kind::kUndeclaredRmw, e, v);
      if (!inner_atomic_rmw) {
        record(ManifestViolation::Kind::kRmwNonAtomicPolicy, e, v);
      }
    }
    // Incidence: a self-loop is both an in- and an out-edge of v, so either
    // declared side admits the access.
    const bool own_out = g_->edge_source(e) == v;
    const bool own_in = g_->edge_target(e) == v;
    if (!own_out && !own_in) {
      record(ManifestViolation::Kind::kForeignEdge, e, v);
      return;
    }
    const bool allowed =
        is_write ? ((own_in && writes(manifest_.in_edges)) ||
                    (own_out && writes(manifest_.out_edges)))
                 : ((own_in && reads(manifest_.in_edges)) ||
                    (own_out && reads(manifest_.out_edges)));
    if (!allowed) {
      record(is_write ? ManifestViolation::Kind::kUndeclaredWrite
                      : ManifestViolation::Kind::kUndeclaredRead,
             e, v);
    }
  }

  [[nodiscard]] ManifestCheck result() const {
    ManifestCheck c;
    c.accesses = accesses_.load(std::memory_order_relaxed);
    c.violations = violations_.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      c.samples = samples_;
    }
    return c;
  }

 private:
  const Graph* g_;
  AccessManifest manifest_;
  std::atomic<std::uint64_t> accesses_{0};
  std::atomic<std::uint64_t> violations_{0};
  mutable std::mutex mu_;
  std::vector<ManifestViolation> samples_;
};

/// The decorator. Satisfies the same duck-typed policy interface as the four
/// real policies, so engines templated on Policy take it unchanged.
template <typename Inner>
struct VerifyingAccess {
  static constexpr bool kAtomicRmw = Inner::kAtomicRmw;

  Inner inner{};
  ManifestEnforcer* enforcer = nullptr;
  VertexId current = kInvalidVertex;

  /// Invoked by the engine contexts when they repoint at a vertex (concept-
  /// gated in begin(); policies without the hook pay nothing).
  void begin_update(VertexId v) { current = v; }

  template <EdgePod T>
  [[nodiscard]] T read(const EdgeDataArray<T>& a, EdgeId e) const {
    enforcer->check(e, current, /*is_write=*/false, /*rmw=*/false, kAtomicRmw);
    return inner.read(a, e);
  }

  template <EdgePod T>
  void write(EdgeDataArray<T>& a, EdgeId e, T v) const {
    enforcer->check(e, current, /*is_write=*/true, /*rmw=*/false, kAtomicRmw);
    inner.write(a, e, v);
  }

  template <EdgePod T>
  T exchange(EdgeDataArray<T>& a, EdgeId e, T v) const {
    enforcer->check(e, current, /*is_write=*/true, /*rmw=*/true, kAtomicRmw);
    return inner.exchange(a, e, v);
  }

  template <EdgePod T, typename Fn>
  void accumulate(EdgeDataArray<T>& a, EdgeId e, Fn fn) const {
    enforcer->check(e, current, /*is_write=*/true, /*rmw=*/true, kAtomicRmw);
    inner.accumulate(a, e, fn);
  }
};

}  // namespace ndg
