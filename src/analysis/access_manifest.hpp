#pragma once
// AccessManifest — a vertex program's DECLARED access shape, the input to the
// static half of the eligibility question (docs/ANALYSIS.md).
//
// The dynamic analysis (core/eligibility.hpp) answers "is this algorithm
// eligible for nondeterministic execution?" by observing one instrumented
// run, so a program whose conflict class depends on input can be misjudged
// from one trace, and nothing stops a program from quietly bypassing the
// AccessPolicy layer. The manifest closes both gaps: every program declares,
// as a constexpr constant, which of its own edge slots update(v) may touch
// and how, plus the convergence/monotonicity claims the paper's theorems
// need. From the declaration alone the static evaluator
// (analysis/static_eligibility.hpp) derives the Theorem 1/2 premises at
// compile time, and the VerifyingAccess decorator
// (analysis/verifying_access.hpp) enforces the declaration at runtime.
//
// The vocabulary is deliberately the paper's: update(v) may only touch v's
// incident edges (the Section II update scope), so the declarable surface is
// exactly {own in-edges, own out-edges} x {read, write} plus whether writes
// are compound read-modify-writes (accumulate/exchange — the push-mode verbs
// Section III's minimal atomicity cannot cover) and whether every write
// follows the Section II task-generation rule (write_silent and exchange do
// not; the theorems' convergence arguments are tied to that rule).

#include <cstdint>

namespace ndg {

/// How update(v) may touch one class of v's incident edge slots.
enum class SlotAccess : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kReadWrite = 3,
};

[[nodiscard]] constexpr bool reads(SlotAccess a) {
  return (static_cast<std::uint8_t>(a) &
          static_cast<std::uint8_t>(SlotAccess::kRead)) != 0;
}

[[nodiscard]] constexpr bool writes(SlotAccess a) {
  return (static_cast<std::uint8_t>(a) &
          static_cast<std::uint8_t>(SlotAccess::kWrite)) != 0;
}

/// Claimed direction of the projected edge values under conflict-free
/// execution (Theorem 2's monotonicity premise). Mirrors what the dynamic
/// MonotonicityChecker observes; kNone = no monotonicity claim.
enum class MonotoneClaim : std::uint8_t {
  kNone = 0,
  kNonIncreasing = 1,
  kNonDecreasing = 2,
};

[[nodiscard]] const char* to_string(SlotAccess a);
[[nodiscard]] const char* to_string(MonotoneClaim m);

/// The declaration itself. Aggregate + constexpr-friendly so programs write
///
///   static constexpr AccessManifest kManifest{
///       .in_edges = SlotAccess::kRead,
///       .out_edges = SlotAccess::kWrite,
///       .bsp_convergent = true,
///   };
///
/// and the evaluator can fold it at compile time.
struct AccessManifest {
  /// Access to v's own in-edge slots from update(v).
  SlotAccess in_edges = SlotAccess::kNone;
  /// Access to v's own out-edge slots from update(v).
  SlotAccess out_edges = SlotAccess::kNone;
  /// Some writes are compound read-modify-writes (ctx.accumulate /
  /// ctx.exchange). Section III's minimal atomicity covers individual reads
  /// and writes only, so an RMW manifest is incompatible with the aligned
  /// policy (method (2)) — enforced at compile time, see
  /// assert_manifest_policy in static_eligibility.hpp.
  bool rmw = false;
  /// Every write schedules the edge's other endpoint (the Section II
  /// task-generation rule). ctx.write_silent and ctx.exchange step outside
  /// the rule; programs using them must declare false, which forfeits both
  /// theorems (their convergence arguments assume the rule).
  bool follows_task_rule = true;
  /// Theorem 2 premise: projected slot values move only this direction.
  MonotoneClaim monotone = MonotoneClaim::kNone;
  /// Theorem 1 premise: claimed convergence under the synchronous (BSP)
  /// model. Convergence is a dynamic property — the claim is validated by
  /// the measured analysis, not proven here.
  bool bsp_convergent = false;
  /// Theorem 2 premise: claimed convergence under deterministic async runs.
  bool async_convergent = false;
  /// The convergence claims hold on typical inputs but not all (e.g. label
  /// propagation oscillates under BSP on bipartite-ish graphs). The static
  /// verdict for such programs is CONDITIONAL on the measured premises.
  bool input_dependent_convergence = false;
};

/// An edge (s, t) is written by f(s) iff out_edges writes, and by f(t) iff
/// in_edges writes — so a write-write conflict between two distinct updates
/// is possible exactly when both sides declare writes.
[[nodiscard]] constexpr bool ww_possible(const AccessManifest& m) {
  return writes(m.out_edges) && writes(m.in_edges);
}

/// A read-write conflict pairs a reader update with a distinct writer update
/// on the same edge: reader side declares a read while the opposite side
/// declares a write.
[[nodiscard]] constexpr bool rw_possible(const AccessManifest& m) {
  return (reads(m.in_edges) && writes(m.out_edges)) ||
         (reads(m.out_edges) && writes(m.in_edges));
}

}  // namespace ndg
