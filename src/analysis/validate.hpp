#pragma once
// validate_manifest — one manifest-enforced run of a program, the runtime
// bridge from "the manifest claims this access shape" to "the executed
// accesses stayed inside it". Runs the deterministic (ascending-label,
// Gauss–Seidel) schedule single-threaded under VerifyingAccess, so the
// result is reproducible and race-free regardless of the wrapped policy.
//
// A clean check licenses the static verdict for this (program, graph) pair:
// every access the dynamic ConflictTracer could observe is inside the
// declared shape, so the statically derived conflict classes are sound.

#include "analysis/direction_eligibility.hpp"
#include "analysis/static_eligibility.hpp"
#include "analysis/verifying_access.hpp"
#include "engine/update_context.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

template <VertexProgram Program>
  requires ManifestedProgram<Program>
ManifestCheck validate_manifest(const Graph& g, Program& prog,
                                std::size_t max_iterations = 100000) {
  using ED = typename Program::EdgeData;
  EdgeDataArray<ED> edges(g.num_edges());
  prog.init(g, edges);

  ManifestEnforcer enforcer(g, Program::kManifest);
  // Relaxed atomics inside the wrapper: RMW verbs stay genuinely atomic, so
  // the only reportable RMW violation is an undeclared one (single-threaded
  // here anyway; the policy choice just keeps the harness standard-
  // conforming for any caller).
  VerifyingAccess<RelaxedAtomicAccess> policy{{}, &enforcer};

  Frontier frontier(g.num_vertices());
  frontier.seed(prog.initial_frontier(g));
  UpdateContext<ED, VerifyingAccess<RelaxedAtomicAccess>> ctx(
      g, edges, policy, frontier);

  std::size_t iterations = 0;
  while (!frontier.empty() && iterations < max_iterations) {
    for (const VertexId v : frontier.current()) {
      ctx.begin(v, iterations);
      prog.update(v, ctx);
    }
    frontier.advance();
    ++iterations;
  }
  return enforcer.result();
}

/// The push-direction twin: one deterministic run of update_push under
/// enforcement of kPushManifest — the dynamic tracer behind the directed-run
/// check in bench/eligibility_report. A program whose push entry point
/// touches an edge side its push manifest does not declare fails here, which
/// voids the push/mixed verdicts derived from that manifest.
template <VertexProgram Program>
  requires PushCapableProgram<Program>
ManifestCheck validate_manifest_push(const Graph& g, Program& prog,
                                     std::size_t max_iterations = 100000) {
  using ED = typename Program::EdgeData;
  EdgeDataArray<ED> edges(g.num_edges());
  prog.init(g, edges);

  ManifestEnforcer enforcer(g, Program::kPushManifest);
  VerifyingAccess<RelaxedAtomicAccess> policy{{}, &enforcer};

  Frontier frontier(g.num_vertices());
  frontier.seed(prog.initial_frontier(g));
  UpdateContext<ED, VerifyingAccess<RelaxedAtomicAccess>> ctx(
      g, edges, policy, frontier);

  std::size_t iterations = 0;
  while (!frontier.empty() && iterations < max_iterations) {
    for (const VertexId v : frontier.current()) {
      ctx.begin(v, iterations);
      prog.update_push(v, ctx);
    }
    frontier.advance();
    ++iterations;
  }
  return enforcer.result();
}

}  // namespace ndg
