#include <sstream>

#include "analysis/access_manifest.hpp"
#include "analysis/directional_manifest.hpp"
#include "analysis/verifying_access.hpp"

namespace ndg {

const char* to_string(SlotAccess a) {
  switch (a) {
    case SlotAccess::kNone: return "none";
    case SlotAccess::kRead: return "read";
    case SlotAccess::kWrite: return "write";
    case SlotAccess::kReadWrite: return "read-write";
  }
  return "?";
}

const char* to_string(MonotoneClaim m) {
  switch (m) {
    case MonotoneClaim::kNone: return "none";
    case MonotoneClaim::kNonIncreasing: return "non-increasing";
    case MonotoneClaim::kNonDecreasing: return "non-decreasing";
  }
  return "?";
}

const char* to_string(ManifestViolation::Kind k) {
  switch (k) {
    case ManifestViolation::Kind::kUndeclaredRead: return "undeclared-read";
    case ManifestViolation::Kind::kUndeclaredWrite: return "undeclared-write";
    case ManifestViolation::Kind::kForeignEdge: return "foreign-edge";
    case ManifestViolation::Kind::kUndeclaredRmw: return "undeclared-rmw";
    case ManifestViolation::Kind::kRmwNonAtomicPolicy:
      return "rmw-non-atomic-policy";
  }
  return "?";
}

std::string ManifestViolation::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " on edge " << edge << " by update(" << vertex
     << ")";
  return os.str();
}

std::string ManifestCheck::describe() const {
  std::ostringstream os;
  os << (ok() ? "manifest OK" : "MANIFEST VIOLATED") << ": " << accesses
     << " accesses, " << violations << " violations";
  for (const ManifestViolation& v : samples) os << "\n    " << v.describe();
  return os.str();
}

const char* to_string(Direction d) {
  switch (d) {
    case Direction::kPull: return "pull";
    case Direction::kPush: return "push";
  }
  return "?";
}

namespace {

/// Names every failing Theorem 1/2 premise of `m`, joined with "; ". Empty
/// when the manifest passes a theorem.
std::string manifest_failure_reasons(const AccessManifest& m) {
  if (static_verdict_given(m, m.bsp_convergent, m.async_convergent) !=
      EligibilityVerdict::kNotProven) {
    return {};
  }
  std::ostringstream os;
  const char* sep = "";
  if (!m.follows_task_rule) {
    os << sep
       << "writes step outside the Section II task-generation rule "
          "(write_silent/exchange without scheduling the other endpoint)";
    sep = "; ";
  }
  if (ww_possible(m)) {
    os << sep << "write-write conflicts are possible (both endpoint sides "
                 "write)";
    if (m.monotone == MonotoneClaim::kNone) {
      os << " with no monotone claim to recover through";
    }
    sep = "; ";
  }
  if (m.monotone == MonotoneClaim::kNone && !ww_possible(m)) {
    // WW-free but still failing: convergence claims must be missing.
    if (!m.bsp_convergent) {
      os << sep << "no BSP convergence claim (Theorem 1 premise)";
      sep = "; ";
    }
  }
  if (m.monotone != MonotoneClaim::kNone && !m.async_convergent) {
    os << sep << "no deterministic-async convergence claim (Theorem 2 "
                 "premise)";
    sep = "; ";
  }
  if (ww_possible(m) && m.monotone != MonotoneClaim::kNone &&
      m.async_convergent && m.follows_task_rule) {
    // Defensive: should be unreachable (that is exactly Theorem 2).
    os << sep << "premises unexpectedly incomplete";
  }
  std::string s = os.str();
  if (s.empty()) s = "theorem premises not satisfied";
  return s;
}

}  // namespace

std::string direction_refusal_reason(const DirectionalManifest& dm,
                                     Direction d) {
  if (direction_verdict(dm, d) != EligibilityVerdict::kNotProven) return {};
  if (d == Direction::kPush && !dm.has_push) {
    return "no push-side manifest declared (pull-only program)";
  }
  const AccessManifest& m = (d == Direction::kPush) ? dm.push : dm.pull;
  std::ostringstream os;
  os << to_string(d) << " direction not proven: " << manifest_failure_reasons(m);
  return os.str();
}

std::string switchability_refusal_reason(const DirectionalManifest& dm) {
  if (direction_switchable(dm)) return {};
  // A failing single direction dominates the explanation.
  for (Direction d : {Direction::kPull, Direction::kPush}) {
    std::string r = direction_refusal_reason(dm, d);
    if (!r.empty()) return r;
  }
  // Both directions proven in isolation: the merged manifest is what fails —
  // the cross-direction interference only the mixed-schedule check sees.
  const AccessManifest m = merged_manifest(dm);
  std::ostringstream os;
  os << "mixed pull/push schedule not proven (cross-direction interference): "
     << manifest_failure_reasons(m);
  return os.str();
}

DirectionResolution resolve_direction(const DirectionalManifest& dm,
                                      DirectionMode requested,
                                      AtomicityMode atomicity) {
  DirectionResolution res;
  const bool pull_ok =
      direction_verdict(dm, Direction::kPull) != EligibilityVerdict::kNotProven;
  const bool push_ok =
      direction_verdict(dm, Direction::kPush) != EligibilityVerdict::kNotProven;

  switch (requested) {
    case DirectionMode::kPull:
      if (!pull_ok) {
        res.reason = direction_refusal_reason(dm, Direction::kPull);
        return res;
      }
      res.ok = true;
      res.effective = DirectionMode::kPull;
      break;
    case DirectionMode::kPush:
      if (!push_ok) {
        res.reason = direction_refusal_reason(dm, Direction::kPush);
        return res;
      }
      res.ok = true;
      res.effective = DirectionMode::kPush;
      break;
    case DirectionMode::kAuto:
      if (direction_switchable(dm)) {
        res.ok = true;
        res.effective = DirectionMode::kAuto;
      } else if (pull_ok || push_ok) {
        res.ok = true;
        res.pinned = true;
        res.effective = pull_ok ? DirectionMode::kPull : DirectionMode::kPush;
        res.reason = std::string("pinned to ") + to_string(res.effective) +
                     ": " + switchability_refusal_reason(dm);
      } else {
        res.reason = switchability_refusal_reason(dm);
        return res;
      }
      break;
  }

  // Runtime twin of assert_manifest_policy: an effective mode that can run
  // push needs a policy with atomic RMW when the push side declares RMW.
  const bool may_push = res.effective != DirectionMode::kPull;
  if (may_push && dm.push.rmw && atomicity == AtomicityMode::kAligned) {
    res.ok = false;
    res.pinned = false;
    res.reason =
        "push manifest declares RMW but AlignedAccess (method 2) has atomic "
        "loads/stores only — use locked|relaxed|seq_cst";
  }
  return res;
}

}  // namespace ndg
