#include <sstream>

#include "analysis/access_manifest.hpp"
#include "analysis/verifying_access.hpp"

namespace ndg {

const char* to_string(SlotAccess a) {
  switch (a) {
    case SlotAccess::kNone: return "none";
    case SlotAccess::kRead: return "read";
    case SlotAccess::kWrite: return "write";
    case SlotAccess::kReadWrite: return "read-write";
  }
  return "?";
}

const char* to_string(MonotoneClaim m) {
  switch (m) {
    case MonotoneClaim::kNone: return "none";
    case MonotoneClaim::kNonIncreasing: return "non-increasing";
    case MonotoneClaim::kNonDecreasing: return "non-decreasing";
  }
  return "?";
}

const char* to_string(ManifestViolation::Kind k) {
  switch (k) {
    case ManifestViolation::Kind::kUndeclaredRead: return "undeclared-read";
    case ManifestViolation::Kind::kUndeclaredWrite: return "undeclared-write";
    case ManifestViolation::Kind::kForeignEdge: return "foreign-edge";
    case ManifestViolation::Kind::kUndeclaredRmw: return "undeclared-rmw";
    case ManifestViolation::Kind::kRmwNonAtomicPolicy:
      return "rmw-non-atomic-policy";
  }
  return "?";
}

std::string ManifestViolation::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " on edge " << edge << " by update(" << vertex
     << ")";
  return os.str();
}

std::string ManifestCheck::describe() const {
  std::ostringstream os;
  os << (ok() ? "manifest OK" : "MANIFEST VIOLATED") << ": " << accesses
     << " accesses, " << violations << " violations";
  for (const ManifestViolation& v : samples) os << "\n    " << v.describe();
  return os.str();
}

}  // namespace ndg
