#pragma once
// Coordinator of the replicated serving tier (docs/TIER.md).
//
// The coordinator is the ONLY process that owns a MutationLog: every write
// enters here, is sealed into an epoch batch on `recompute`, applied to the
// coordinator's own DynGraph + IncrementalEngine (so the coordinator always
// holds an authoritative quiescent result), and the *validated*
// AppliedMutation records — ids already assigned — are appended to a bounded
// ReplicationLog and streamed to every connected replica. Replicas never
// validate or allocate; they replay the shipped records verbatim
// (DynGraph::apply_replicated), which keeps their edge-id spaces identical
// to the coordinator's.
//
// Flow control is a window of ONE record per replica: the next record is
// sent only after the previous one is acked. A replica that stalls (or is
// held with --chaos-lag-ms) therefore genuinely falls behind while the
// coordinator keeps sealing epochs; once its cursor drops past the bounded
// history the coordinator stops trying to stream and re-seeds it with a full
// canonical snapshot instead. If any topology mutation landed since the last
// compaction (DynGraph::ids_canonical — NOT overflow_ratio, which the edge-id
// freelist can return to 0 with ids out of order) it compacts first and
// appends an in-stream kCompact fence for the replicas that are current, so
// the shipped edge list is in canonical (src, dst) order and edge k's id is
// k on both sides. Snapshot edges are NOT queued into the peer's out buffer
// in one O(E) shot: the edge list is materialized once into a shared
// immutable SnapshotData (consistent even if later epochs mutate the graph
// mid-stream — the records appended after the snapshot point replay on top)
// and each lagging peer streams from it behind its own cursor as POLLOUT
// drains, keeping per-peer buffered output bounded.
//
// Threading: everything here runs on one poll() event loop; recompute is
// inline (reads are the replicas' job — the coordinator answering a query
// from its quiescent cache is a convenience and the --replicas=0 baseline).

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dyn/dyn_graph.hpp"
#include "dyn/eligibility_gate.hpp"
#include "dyn/incremental.hpp"
#include "dyn/mutation_log.hpp"
#include "dyn/replication.hpp"
#include "dyn/wire.hpp"
#include "tier/net.hpp"

namespace ndg::tier {

struct CoordinatorOptions {
  std::string dir;            // run directory holding the tier's sockets
  std::size_t history = 64;   // ReplicationLog bound (records retained)
  /// When the coordinator's process owns the replica children (the ndg_tier
  /// launcher layout), reap() also collects exited children with
  /// waitpid(WNOHANG) so a crashed replica becomes a zombie-free, observable
  /// event (stats: children_reaped, exit code: run() returns 1 on a crash)
  /// instead of an undead fd the loop keeps pumping.
  bool reap_children = false;
};

inline std::string tier_error(const std::string& what) {
  return dyn::WireWriter().boolean("ok", false).str("error", what).finish();
}

/// JSON has no literal for the IEEE specials; label them distinctly.
inline void tier_value_field(dyn::WireWriter& w, double value) {
  if (std::isnan(value)) {
    w.str("value", "nan");
  } else if (std::isinf(value)) {
    w.str("value", value > 0 ? "inf" : "-inf");
  } else {
    w.num("value", value);
  }
}

template <VertexProgram Program>
class Coordinator {
 public:
  Coordinator(dyn::DynGraph graph, Program prog, dyn::EligibilityGate gate,
              EngineOptions eopts, dyn::DynEngine ekind,
              CoordinatorOptions opts)
      : g_(std::move(graph)),
        prog_(std::move(prog)),
        inc_(g_, prog_, std::move(gate), eopts, ekind),
        replog_(opts.history),
        opts_(std::move(opts)) {
    inc_.recompute_cold();
    values_ = prog_.values();
    client_listen_ = listen_unix(coord_sock(opts_.dir));
    rep_listen_ = listen_unix(rep_sock(opts_.dir));
  }

  ~Coordinator() {
    for (auto& [id, c] : clients_) c.close_fd();
    for (auto& [id, p] : peers_) p.conn.close_fd();
    if (client_listen_ >= 0) ::close(client_listen_);
    if (rep_listen_ >= 0) ::close(rep_listen_);
    ::unlink(coord_sock(opts_.dir).c_str());
    ::unlink(rep_sock(opts_.dir).c_str());
  }

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  int run() {
    std::vector<pollfd> pfds;
    std::vector<std::uint64_t> owner;  // parallel: client/peer id, 0 = none
    std::vector<bool> is_peer;
    while (!shutdown_ || !drained()) {
      pfds.clear();
      owner.clear();
      is_peer.clear();
      if (!shutdown_) {
        pfds.push_back({client_listen_, POLLIN, 0});
        owner.push_back(0);
        is_peer.push_back(false);
        pfds.push_back({rep_listen_, POLLIN, 0});
        owner.push_back(0);
        is_peer.push_back(false);
      }
      for (auto& [id, c] : clients_) add_conn(pfds, owner, is_peer, id, c,
                                              /*peer=*/false);
      for (auto& [id, p] : peers_) add_conn(pfds, owner, is_peer, id, p.conn,
                                            /*peer=*/true);
      if (pfds.empty()) break;  // shutdown with everything flushed
      const int rc = ::poll(pfds.data(), pfds.size(), -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        std::cerr << "ndg_tier: coordinator poll failed: "
                  << std::strerror(errno) << "\n";
        return 1;
      }
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        const short re = pfds[i].revents;
        if (re == 0) continue;
        if (pfds[i].fd == client_listen_) {
          accept_into(client_listen_, /*peer=*/false);
        } else if (pfds[i].fd == rep_listen_) {
          accept_into(rep_listen_, /*peer=*/true);
        } else if (is_peer[i]) {
          if (auto it = peers_.find(owner[i]); it != peers_.end()) {
            RepPeer& p = it->second;
            if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) {
              p.conn.read_input();
            }
            if ((re & POLLOUT) != 0) p.conn.flush();
            drain_peer(p);
          }
        } else if (auto it = clients_.find(owner[i]); it != clients_.end()) {
          LineConn& c = it->second;
          if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) c.read_input();
          if ((re & POLLOUT) != 0) c.flush();
          drain_client(c);
        }
      }
      reap();
    }
    return children_crashed_ > 0 ? 1 : 0;
  }

  /// Lowest epoch every connected, synced replica has acked — the tier's
  /// guaranteed-visible watermark. Coordinator epoch when no replica is up.
  [[nodiscard]] std::uint64_t min_acked_epoch() const {
    std::uint64_t lo = log_.epoch();
    for (const auto& [id, p] : peers_) {
      if (p.synced && p.acked_epoch < lo) lo = p.acked_epoch;
    }
    return lo;
  }

 private:
  /// One consistent snapshot: the canonical live edge list at the moment
  /// `header.seq` was the newest record. Shared (immutable) between every
  /// peer re-seeding from the same point; 12 bytes/edge instead of the
  /// ~70-byte encoded line, and encoded lazily per peer as its socket
  /// drains.
  struct SnapshotData {
    dyn::SnapshotHeader header;
    std::vector<dyn::SnapshotEdge> edges;
  };

  struct RepPeer {
    LineConn conn;
    bool synced = false;       // sync handshake received
    std::uint64_t replica_id = 0;
    std::uint64_t next_seq = 1;    // next record this replica needs
    bool awaiting_ack = false;     // window-of-1 flow control
    std::uint64_t acked_seq = 0;
    std::uint64_t acked_epoch = 0;
    std::shared_ptr<const SnapshotData> snap;  // in-flight snapshot, if any
    std::size_t snap_pos = 0;                  // next edge to encode
  };

  /// Per-peer bound on buffered, not-yet-flushed snapshot output: streaming
  /// pauses once out_buf reaches this and resumes as POLLOUT drains it.
  static constexpr std::size_t kSnapshotChunkBytes = 256 * 1024;

  /// Edges per kSnapChunk frame on a binary peer (~96 KiB of payload); the
  /// kSnapshotChunkBytes backlog bound still governs how many frames are
  /// buffered at once.
  static constexpr std::size_t kSnapEdgesPerChunk = 8192;

  static void add_conn(std::vector<pollfd>& pfds,
                       std::vector<std::uint64_t>& owner,
                       std::vector<bool>& is_peer, std::uint64_t id,
                       const LineConn& c, bool peer) {
    short events = 0;
    if (!c.eof && !c.draining) events |= POLLIN;
    if (!c.out_buf.empty()) events |= POLLOUT;
    if (events == 0 || c.fd < 0) return;
    pfds.push_back({c.fd, events, 0});
    owner.push_back(id);
    is_peer.push_back(peer);
  }

  void accept_into(int listen_fd, bool peer) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;
      }
      set_nonblocking(fd);
      const std::uint64_t id = ++next_id_;
      if (peer) {
        peers_[id].conn.fd = fd;
      } else {
        LineConn& c = clients_[id];
        c.fd = fd;
        c.queue_line(ready_line());
      }
    }
  }

  [[nodiscard]] std::string ready_line() const {
    return dyn::WireWriter()
        .boolean("ok", true)
        .boolean("ready", true)
        .str("role", "coordinator")
        .str("algo", prog_.name())
        .str("engine", to_string(inc_.engine_kind()))
        .u64("vertices", g_.num_vertices())
        .u64("live_edges", g_.num_live_edges())
        .finish();
  }

  // --- Client command path (ndg_serve wire shapes + tier extras) ---

  void drain_client(LineConn& c) {
    if (c.proto == dyn::WireProto::kJson) drain_client_lines(c);
    if (c.proto == dyn::WireProto::kBin) drain_client_frames(c);
    c.flush();
  }

  void drain_client_lines(LineConn& c) {
    while (!c.draining && !c.broken && !c.pending.empty() &&
           c.proto == dyn::WireProto::kJson) {
      const std::string line = std::move(c.pending.front());
      c.pending.pop_front();
      if (line.empty() ||
          line.find_first_not_of(" \t\r") == std::string::npos) {
        continue;
      }
      dyn::WireMessage msg;
      std::string err;
      if (!parse_wire(line, msg, &err)) {
        ++parse_errors_;
        c.queue_line(tier_error("parse: " + err));
        continue;
      }
      std::string op;
      if (!msg.get_string("op", op)) {
        c.queue_line(tier_error("missing field: op"));
        continue;
      }
      if (op == "hello") {
        std::string proto;
        if (!msg.get_string("proto", proto)) {
          c.queue_line(tier_error("hello: missing field: proto"));
        } else if (proto != dyn::kBinProtoName) {
          c.queue_line(tier_error("hello: unknown proto: " + proto));
        } else {
          c.queue_line(dyn::WireWriter()
                           .boolean("ok", true)
                           .str("proto", dyn::kBinProtoName)
                           .finish());
          // Replays any pipelined frame bytes; drain_client falls through
          // to the frame pump for them.
          c.upgrade_to_bin();
          return;
        }
        continue;
      }
      if (op == "mutate") {
        c.queue_line(handle_mutate(msg));
      } else if (op == "recompute") {
        c.queue_line(handle_recompute());
      } else if (op == "query") {
        c.queue_line(query_reply(msg));
      } else if (op == "stats") {
        c.queue_line(stats_reply());
      } else if (op == "quit") {
        c.queue_line(dyn::WireWriter()
                         .boolean("ok", true)
                         .boolean("bye", true)
                         .finish());
        c.draining = true;
      } else if (op == "shutdown") {
        begin_shutdown();
        c.queue_line(dyn::WireWriter()
                         .boolean("ok", true)
                         .boolean("bye", true)
                         .finish());
        c.draining = true;
      } else {
        c.queue_line(tier_error("unknown op: " + op));
      }
    }
  }

  void frame_error(LineConn& c, std::string_view what) {
    ++parse_errors_;
    c.queue_frame(dyn::FrameType::kError, what);
  }

  /// Frame dispatch mirrors drain_client_lines op for op (recompute is
  /// inline on the coordinator, so there is no epoch barrier to wait on).
  /// Replies are queued without flushing; drain_client flushes once.
  void drain_client_frames(LineConn& c) {
    while (!c.draining && !c.broken && !c.frames.empty()) {
      const dyn::Frame f = std::move(c.frames.front());
      c.frames.pop_front();
      std::string err;
      switch (f.type) {
        case dyn::FrameType::kMutate: {
          dyn::Mutation m;
          if (!dyn::decode_mutate(f.payload, m, &err)) {
            frame_error(c, err);
            break;
          }
          log_.append(m);
          c.queue_frame(dyn::FrameType::kMutateAck,
                        dyn::encode_mutate_ack(log_.pending()));
          break;
        }
        case dyn::FrameType::kMBatch: {
          std::vector<dyn::Mutation> ms;
          if (!dyn::decode_mbatch(f.payload, ms, &err)) {
            frame_error(c, err);
            break;
          }
          log_.append(ms);
          c.queue_frame(
              dyn::FrameType::kMBatchAck,
              dyn::encode_mbatch_ack(static_cast<std::uint32_t>(ms.size()),
                                     log_.pending()));
          break;
        }
        case dyn::FrameType::kQuery: {
          std::uint64_t v = 0;
          if (!dyn::decode_query(f.payload, v, &err)) {
            frame_error(c, err);
            break;
          }
          if (v >= values_.size()) {
            frame_error(c,
                        "query: vertex out of range: " + std::to_string(v));
            break;
          }
          dyn::QueryReplyBin qr;
          qr.vertex = v;
          qr.value = values_[v];
          qr.epoch = log_.epoch();
          c.queue_frame(dyn::FrameType::kQueryReply,
                        dyn::encode_query_reply(qr));
          break;
        }
        case dyn::FrameType::kRecompute:
          c.queue_frame(dyn::FrameType::kRecomputeReply,
                        dyn::encode_recompute_reply(
                            recompute_bin(do_recompute())));
          break;
        case dyn::FrameType::kStats:
          c.queue_frame(dyn::FrameType::kJson, stats_reply());
          break;
        case dyn::FrameType::kQuit:
          c.queue_frame(dyn::FrameType::kBye, {});
          c.draining = true;
          break;
        case dyn::FrameType::kShutdown:
          begin_shutdown();
          c.queue_frame(dyn::FrameType::kBye, {});
          c.draining = true;
          break;
        default:
          frame_error(c, "unexpected frame type: " +
                             std::to_string(
                                 static_cast<unsigned>(f.type)));
          break;
      }
    }
  }

  /// Tier-wide stop: tell every replica (on whichever protocol it speaks)
  /// to exit; the loop ends once all out buffers flush.
  void begin_shutdown() {
    for (auto& [id, p] : peers_) {
      if (p.conn.proto == dyn::WireProto::kBin) {
        p.conn.queue_frame(dyn::FrameType::kShutdown, {});
        p.conn.flush();
      } else {
        p.conn.queue_line(dyn::WireWriter().str("op", "shutdown").finish());
      }
      p.conn.draining = true;
    }
    shutdown_ = true;
  }

  std::string handle_mutate(const dyn::WireMessage& msg) {
    std::string kind_s;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!msg.get_string("kind", kind_s)) {
      return tier_error("mutate: missing field: kind");
    }
    dyn::MutationKind kind;
    if (kind_s == "insert") {
      kind = dyn::MutationKind::kInsertEdge;
    } else if (kind_s == "delete") {
      kind = dyn::MutationKind::kDeleteEdge;
    } else if (kind_s == "weight") {
      kind = dyn::MutationKind::kWeightChange;
    } else {
      return tier_error("mutate: unknown kind: " + kind_s);
    }
    if (!msg.get_u64("src", src) || !msg.get_u64("dst", dst)) {
      return tier_error("mutate: missing field: src/dst");
    }
    double weight = 1.0;
    msg.get_double("weight", weight);
    log_.append(dyn::Mutation{kind, static_cast<VertexId>(src),
                              static_cast<VertexId>(dst),
                              static_cast<float>(weight)});
    return dyn::WireWriter()
        .boolean("ok", true)
        .u64("pending", log_.pending())
        .finish();
  }

  /// Seal + apply + ship one epoch; shared by both protocols' recompute.
  dyn::EpochResult do_recompute() {
    const dyn::MutationBatch batch = log_.seal();
    std::vector<dyn::AppliedMutation> shipped;
    dyn::EpochResult r =
        inc_.apply_epoch(batch, /*auto_compact=*/false, &shipped);
    bool compacted = false;
    if (g_.should_compact()) {
      inc_.compact_now();
      compacted = true;
      r.compacted = true;
    }
    values_ = prog_.values();
    replog_.append_batch(batch.epoch, std::move(shipped), compacted);
    snap_cache_.reset();  // graph/seq moved on; peers mid-stream keep theirs
    pump_all_peers();
    return r;
  }

  std::string handle_recompute() {
    const dyn::EpochResult r = do_recompute();
    return dyn::WireWriter()
        .boolean("ok", true)
        .u64("epoch", r.epoch)
        .boolean("warm", r.warm)
        .str("reason", r.gate_reason)
        .u64("applied", r.apply_stats.applied)
        .u64("rejected", r.apply_stats.rejected)
        .u64("seeds", r.seed_count)
        .u64("iterations", r.engine.iterations)
        .u64("updates", r.engine.updates)
        .boolean("converged", r.engine.converged)
        .boolean("compacted", r.compacted)
        .u64("live_edges", g_.num_live_edges())
        .finish();
  }

  [[nodiscard]] dyn::RecomputeReplyBin recompute_bin(
      const dyn::EpochResult& r) const {
    dyn::RecomputeReplyBin b;
    b.epoch = r.epoch;
    b.warm = r.warm;
    b.converged = r.engine.converged;
    b.compacted = r.compacted;
    b.applied = r.apply_stats.applied;
    b.rejected = r.apply_stats.rejected;
    b.seeds = r.seed_count;
    b.iterations = r.engine.iterations;
    b.updates = r.engine.updates;
    b.live_edges = g_.num_live_edges();
    b.reason = r.gate_reason;
    return b;
  }

  std::string query_reply(const dyn::WireMessage& msg) {
    std::uint64_t v = 0;
    if (!msg.get_u64("vertex", v)) {
      return tier_error("query: missing field: vertex");
    }
    if (v >= values_.size()) {
      return tier_error("query: vertex out of range: " + std::to_string(v));
    }
    dyn::WireWriter w;
    w.boolean("ok", true).u64("vertex", v);
    tier_value_field(w, values_[v]);
    return w.u64("epoch", log_.epoch()).finish();
  }

  /// Transport counters across clients AND replication peers; closed
  /// connections' byte totals live on in closed_wire_.
  [[nodiscard]] dyn::WireCounters wire_totals() const {
    dyn::WireCounters w = closed_wire_;
    w.parse_errors = parse_errors_;
    const auto count = [&w](const LineConn& c) {
      w.bytes_in += c.bytes_in;
      w.bytes_out += c.bytes_out;
      if (c.proto == dyn::WireProto::kBin) {
        ++w.conns_bin;
      } else {
        ++w.conns_json;
      }
    };
    for (const auto& [id, c] : clients_) count(c);
    for (const auto& [id, p] : peers_) count(p.conn);
    return w;
  }

  std::string stats_reply() const {
    std::size_t synced = 0;
    for (const auto& [id, p] : peers_) {
      if (p.synced) ++synced;
    }
    const dyn::WireCounters wire = wire_totals();
    return dyn::WireWriter()
        .boolean("ok", true)
        .str("role", "coordinator")
        .str("algo", prog_.name())
        .u64("epoch", log_.epoch())
        .u64("epoch_watermark", min_acked_epoch())
        .u64("pending", log_.pending())
        .u64("log_history_len", log_.history_size())
        .u64("rep_next_seq", replog_.next_seq())
        .u64("rep_oldest_seq", replog_.oldest_seq())
        .u64("rep_history", replog_.size())
        .u64("replicas", synced)
        .u64("replicas_broken", replicas_broken_)
        .u64("children_reaped", children_reaped_)
        .u64("snapshots_served", snapshots_served_)
        .u64("vertices", g_.num_vertices())
        .u64("live_edges", g_.num_live_edges())
        .u64("compactions", g_.compactions())
        .u64("warm_runs", inc_.warm_runs())
        .u64("cold_runs", inc_.cold_runs())
        .u64("bytes_in", wire.bytes_in)
        .u64("bytes_out", wire.bytes_out)
        .u64("parse_errors", wire.parse_errors)
        .u64("conns_json", wire.conns_json)
        .u64("conns_bin", wire.conns_bin)
        .finish();
  }

  // --- Replication peer path ---

  void drain_peer(RepPeer& p) {
    // A replica opens in newline-JSON; a binary one pipelines
    // {"op":"hello","proto":"bin1"} + a kSync frame, so the hello upgrade
    // falls through to the frame pump in the same pass.
    while (!p.conn.broken && p.conn.proto == dyn::WireProto::kJson &&
           !p.conn.pending.empty()) {
      const std::string line = std::move(p.conn.pending.front());
      p.conn.pending.pop_front();
      if (line.empty()) continue;
      dyn::WireMessage msg;
      std::string err;
      std::string op;
      if (!parse_wire(line, msg, &err) || !msg.get_string("op", op)) {
        std::cerr << "ndg_tier: bad replication line: " << err << "\n";
        ++parse_errors_;
        p.conn.broken = true;
        return;
      }
      if (op == "hello") {
        std::string proto;
        if (!msg.get_string("proto", proto) || proto != dyn::kBinProtoName) {
          std::cerr << "ndg_tier: bad replication hello\n";
          p.conn.broken = true;
          return;
        }
        p.conn.queue_line(dyn::WireWriter()
                              .boolean("ok", true)
                              .str("proto", dyn::kBinProtoName)
                              .finish());
        p.conn.upgrade_to_bin();
      } else if (op == "sync") {
        std::uint64_t seq = 0;
        msg.get_u64("replica", p.replica_id);
        msg.get_u64("seq", seq);
        p.synced = true;
        p.next_seq = seq + 1;
      } else if (op == "ack") {
        msg.get_u64("seq", p.acked_seq);
        msg.get_u64("epoch", p.acked_epoch);
        p.awaiting_ack = false;
      } else {
        std::cerr << "ndg_tier: unexpected replication op: " << op << "\n";
        p.conn.broken = true;
        return;
      }
    }
    while (!p.conn.broken && p.conn.proto == dyn::WireProto::kBin &&
           !p.conn.frames.empty()) {
      const dyn::Frame f = std::move(p.conn.frames.front());
      p.conn.frames.pop_front();
      std::string err;
      if (f.type == dyn::FrameType::kSync) {
        std::uint64_t seq = 0;
        if (!dyn::decode_sync_bin(f.payload, p.replica_id, seq, &err)) {
          std::cerr << "ndg_tier: bad sync frame: " << err << "\n";
          ++parse_errors_;
          p.conn.broken = true;
          return;
        }
        p.synced = true;
        p.next_seq = seq + 1;
      } else if (f.type == dyn::FrameType::kAck) {
        std::uint64_t replica = 0;
        if (!dyn::decode_ack_bin(f.payload, replica, p.acked_seq,
                                 p.acked_epoch, &err)) {
          std::cerr << "ndg_tier: bad ack frame: " << err << "\n";
          ++parse_errors_;
          p.conn.broken = true;
          return;
        }
        p.awaiting_ack = false;
      } else {
        std::cerr << "ndg_tier: unexpected replication frame\n";
        p.conn.broken = true;
        return;
      }
    }
    if (p.snap != nullptr) stream_snapshot(p);
    pump_peer(p);
  }

  void pump_all_peers() {
    for (auto& [id, p] : peers_) pump_peer(p);
  }

  /// Ships at most ONE record (or one snapshot) and waits for the ack —
  /// the window-of-1 that lets a slow replica's cursor genuinely fall
  /// behind the bounded history instead of buffering unboundedly in its
  /// socket.
  void pump_peer(RepPeer& p) {
    // eof counts as dead: a SIGKILLed replica surfaces as POLLHUP/read()==0
    // (and EPIPE on the next write); pumping — or worse, materializing an
    // O(E) snapshot — for it is pure waste. reap() retires it this pass.
    if (!p.synced || p.awaiting_ack || p.conn.broken || p.conn.eof ||
        p.conn.draining || shutdown_) {
      return;
    }
    if (p.next_seq >= replog_.next_seq()) return;  // caught up
    if (!replog_.has(p.next_seq)) {
      send_snapshot(p);
      return;
    }
    const dyn::RepRecord& rec = replog_.get(p.next_seq);
    if (p.conn.proto == dyn::WireProto::kBin) {
      // One frame per record: a whole applied epoch ships in one write
      // instead of 1 + count line round-trips through the buffer.
      p.conn.queue_frame(dyn::FrameType::kRepRecord,
                         dyn::encode_record_bin(rec));
      p.conn.flush();
    } else {
      p.conn.queue_line(encode_record_header(rec));
      for (const dyn::AppliedMutation& m : rec.muts) {
        p.conn.queue_line(encode_applied(m));
      }
    }
    p.awaiting_ack = true;
    p.next_seq = rec.seq + 1;
  }

  /// Full re-seed for a replica that fell past the history bound. The
  /// snapshot must be CANONICAL — edge k of the shipped (src, dst)-sorted
  /// list gets id k when the replica rebuilds — so if any topology mutation
  /// landed since the last compaction it compacts first and appends an
  /// in-stream kCompact fence (replicas that are current replay the fence
  /// and compact at the same stream point, keeping every id space aligned).
  /// Canonicality comes from DynGraph::ids_canonical, NOT overflow_ratio():
  /// the edge-id freelist lets a delete + reuse-insert return the ratio to
  /// exactly 0 while id k no longer matches canonical (src, dst) order —
  /// skipping the compact then would ship ids the replica's rebuild
  /// disagrees with, and every later id-addressed record would hit the
  /// wrong edge.
  void send_snapshot(RepPeer& p) {
    const bool fenced = !g_.ids_canonical();
    if (fenced) {
      inc_.compact_now();
      replog_.append_compact(log_.epoch());
      snap_cache_.reset();  // ids just changed under any cached edge list
    }
    if (snap_cache_ == nullptr) {
      auto snap = std::make_shared<SnapshotData>();
      snap->header.seq = replog_.next_seq() - 1;
      snap->header.epoch = log_.epoch();
      snap->header.vertices = g_.num_vertices();
      snap->header.edges = g_.num_live_edges();
      snap->edges.reserve(g_.num_live_edges());
      // Vertex-major with sorted targets == canonical (src, dst) order.
      for (VertexId v = 0; v < g_.num_vertices(); ++v) {
        const auto nbrs = g_.out_neighbors(v);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          snap->edges.push_back(dyn::SnapshotEdge{
              v, nbrs[k], g_.edge_weight(g_.out_edge_id(v, k))});
        }
      }
      snap_cache_ = std::move(snap);
    }
    p.snap = snap_cache_;
    p.snap_pos = 0;
    if (p.conn.proto == dyn::WireProto::kBin) {
      p.conn.queue_frame(dyn::FrameType::kSnapshot,
                         dyn::encode_snapshot_header_bin(p.snap->header));
    } else {
      p.conn.queue_line(encode_snapshot_header(p.snap->header));
    }
    p.awaiting_ack = true;
    p.next_seq = snap_cache_->header.seq + 1;
    ++snapshots_served_;
    stream_snapshot(p);
    // Caught-up idle peers must see the fence now, not on their next ack;
    // safe to re-enter pump_peer: this peer is awaiting_ack and any other
    // lagging peer snapshots without fencing again (ids are canonical).
    if (fenced) pump_all_peers();
  }

  /// Encodes more of the in-flight snapshot into the peer's out buffer, up
  /// to kSnapshotChunkBytes of backlog; drain_peer re-invokes this as
  /// POLLOUT drains, so a large snapshot never sits fully encoded in
  /// coordinator memory.
  void stream_snapshot(RepPeer& p) {
    if (p.snap == nullptr) return;
    if (p.conn.broken || p.conn.eof || p.conn.draining) {
      p.snap.reset();  // peer died mid-stream; stop encoding at a dead fd
      return;
    }
    while (p.snap_pos < p.snap->edges.size() && !p.conn.broken &&
           p.conn.out_buf.size() < kSnapshotChunkBytes) {
      if (p.conn.proto == dyn::WireProto::kBin) {
        // 12 B/edge raw chunks straight off the shared snapshot buffer.
        const std::size_t n = std::min(kSnapEdgesPerChunk,
                                       p.snap->edges.size() - p.snap_pos);
        p.conn.queue_frame(
            dyn::FrameType::kSnapChunk,
            dyn::encode_snapshot_chunk(p.snap->edges.data() + p.snap_pos, n));
        p.snap_pos += n;
      } else {
        p.conn.queue_line(
            dyn::encode_snapshot_edge(p.snap->edges[p.snap_pos]));
        ++p.snap_pos;
      }
    }
    p.conn.flush();  // queue_frame does not flush; one write per pass
    if (p.snap_pos == p.snap->edges.size()) p.snap.reset();
  }

  void reap() {
    const auto retire = [this](const LineConn& c) {
      closed_wire_.bytes_in += c.bytes_in;
      closed_wire_.bytes_out += c.bytes_out;
    };
    for (auto it = clients_.begin(); it != clients_.end();) {
      if (it->second.finished()) {
        retire(it->second);
        it->second.close_fd();
        it = clients_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = peers_.begin(); it != peers_.end();) {
      if (it->second.conn.finished()) {
        // A synced replica only leaves cleanly during tier shutdown; losing
        // one any other way (EPIPE -> broken, SIGKILL -> POLLHUP/eof) is a
        // crash, surfaced in stats as replicas_broken.
        if (it->second.synced && (it->second.conn.broken || !shutdown_)) {
          ++replicas_broken_;
          std::cerr << "ndg_tier: replication peer for replica "
                    << it->second.replica_id << " died (last acked seq "
                    << it->second.acked_seq << ")\n";
        }
        retire(it->second.conn);
        it->second.conn.close_fd();
        it = peers_.erase(it);
      } else {
        ++it;
      }
    }
    // Collect exited replica children (launcher layout only) so a crashed
    // replica is reaped promptly instead of lingering as a zombie until the
    // coordinator itself exits. Clean exits (tier shutdown) count only as
    // reaped; anything else marks the tier failed.
    if (opts_.reap_children) {
      for (;;) {
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0) break;
        ++children_reaped_;
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          ++children_crashed_;
          std::cerr << "ndg_tier: replica child " << pid << " "
                    << (WIFSIGNALED(status)
                            ? "killed by signal " +
                                  std::to_string(WTERMSIG(status))
                            : "exited with status " +
                                  std::to_string(WEXITSTATUS(status)))
                    << "\n";
        }
      }
    }
  }

  /// After shutdown: done once every bye/shutdown line has been flushed
  /// (reap() drops each drained connection as its buffer empties).
  [[nodiscard]] bool drained() const {
    return clients_.empty() && peers_.empty();
  }

  dyn::DynGraph g_;
  Program prog_;
  dyn::MutationLog log_;
  dyn::IncrementalEngine<Program> inc_;
  dyn::ReplicationLog replog_;
  CoordinatorOptions opts_;
  std::vector<double> values_;
  /// Snapshot shared by every peer re-seeding from the current seq; reset
  /// whenever a record is appended (the graph or seq moved on). Peers
  /// mid-stream keep their shared_ptr, so their snapshot stays consistent
  /// and the records after its seq replay on top.
  std::shared_ptr<const SnapshotData> snap_cache_;

  int client_listen_ = -1;
  int rep_listen_ = -1;
  std::map<std::uint64_t, LineConn> clients_;
  std::map<std::uint64_t, RepPeer> peers_;
  std::uint64_t next_id_ = 0;
  std::uint64_t snapshots_served_ = 0;
  std::uint64_t replicas_broken_ = 0;   // synced peers lost outside shutdown
  std::uint64_t children_reaped_ = 0;   // waitpid'd replica children
  std::uint64_t children_crashed_ = 0;  // ...of those, abnormal exits
  dyn::WireCounters closed_wire_;   // byte totals of reaped connections
  std::uint64_t parse_errors_ = 0;  // bad lines + bad frame payloads
  bool shutdown_ = false;
};

}  // namespace ndg::tier
