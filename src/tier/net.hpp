#pragma once
// Socket plumbing shared by the replicated serving tier (docs/TIER.md): the
// coordinator, the replicas, bench_tier and test_tier all speak the same
// newline-delimited flat-JSON protocol (dyn/wire.hpp) over unix stream
// sockets, and they all multiplex with the same nonblocking line-buffered
// connection state. This header is that shared layer — nothing in it knows
// about graphs or replication, only fds, lines, and the tier's well-known
// socket names inside a run directory:
//
//   <dir>/coord.sock      writes + coordinator-local reads (ndg_serve shape)
//   <dir>/rep.sock        replication stream (replicas only)
//   <dir>/replica-K.sock  read fan-out endpoint of replica K

#include <deque>
#include <string>

namespace ndg::tier {

void set_nonblocking(int fd);

/// Binds + listens a unix stream socket at `path` (unlinking any stale
/// file first) and returns the nonblocking listen fd. Throws on failure.
int listen_unix(const std::string& path, int backlog = 16);

/// Connects to a unix socket, retrying while the server is still coming up
/// (ECONNREFUSED / ENOENT), up to ~`timeout_ms`. Returns a BLOCKING fd —
/// callers that join a poll loop set_nonblocking() it themselves. Throws
/// once the deadline passes.
int connect_unix(const std::string& path, int timeout_ms = 10000);

/// One nonblocking line-buffered peer: bytes in -> complete lines out
/// (`pending`), replies queued into `out_buf` and flushed as the socket
/// accepts them. The flag trio mirrors ndg_serve's client lifecycle: eof =
/// peer closed its write side (an unterminated tail still counts as a final
/// line), draining = close once out_buf empties, broken = write error, drop
/// without ceremony.
struct LineConn {
  /// Input bounds. A connection whose unterminated line exceeds
  /// kMaxLineBytes is marked broken — no forward progress is possible and
  /// letting it grow hands a hostile client unbounded server memory. A
  /// single read_input() pass stops pulling from the socket once in_buf
  /// holds kMaxReadBytes; the surplus waits in the kernel socket buffer
  /// (POLLIN stays set) until the caller has drained `pending`, so a
  /// writer that outpaces its drain is backpressured, not buffered.
  static constexpr std::size_t kMaxLineBytes = std::size_t{1} << 20;
  static constexpr std::size_t kMaxReadBytes = std::size_t{4} << 20;

  int fd = -1;
  std::string in_buf;
  std::string out_buf;
  std::deque<std::string> pending;
  bool eof = false;
  bool draining = false;
  bool broken = false;

  /// Drains the socket (up to kMaxReadBytes per pass) and splits complete
  /// lines into `pending`; an unterminated line past kMaxLineBytes sets
  /// `broken`.
  void read_input();

  /// Writes as much of out_buf as the socket takes; EAGAIN leaves the rest
  /// for the next POLLOUT, a hard error sets `broken`.
  void flush();

  void queue_line(const std::string& line) {
    if (broken) return;
    out_buf += line;
    out_buf += '\n';
    flush();
  }

  /// True when the connection has nothing left to do and can be closed.
  [[nodiscard]] bool finished() const {
    return broken || (draining && out_buf.empty()) ||
           (eof && pending.empty() && out_buf.empty());
  }

  void close_fd();
};

// Well-known socket names inside a tier run directory.
[[nodiscard]] inline std::string coord_sock(const std::string& dir) {
  return dir + "/coord.sock";
}
[[nodiscard]] inline std::string rep_sock(const std::string& dir) {
  return dir + "/rep.sock";
}
[[nodiscard]] inline std::string replica_sock(const std::string& dir,
                                              std::size_t k) {
  return dir + "/replica-" + std::to_string(k) + ".sock";
}

}  // namespace ndg::tier
