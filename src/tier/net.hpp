#pragma once
// Socket plumbing shared by the serving stack (docs/TIER.md, docs/DYNAMIC.md):
// the coordinator, the replicas, ndg_serve's socket transport, bench_tier,
// bench_serve and test_tier all speak the same wire protocols
// (dyn/wire.hpp — newline-JSON by default, bin1 frames after a hello
// upgrade) over unix stream sockets, and they all multiplex with the same
// nonblocking buffered connection state. This header is that shared layer —
// nothing in it knows about graphs or replication, only fds, lines, frames,
// and the tier's well-known socket names inside a run directory:
//
//   <dir>/coord.sock      writes + coordinator-local reads (ndg_serve shape)
//   <dir>/rep.sock        replication stream (replicas only)
//   <dir>/replica-K.sock  read fan-out endpoint of replica K

#include <deque>
#include <string>
#include <string_view>

#include "dyn/wire.hpp"

namespace ndg::tier {

void set_nonblocking(int fd);

/// Binds + listens a unix stream socket at `path` (unlinking any stale
/// file first) and returns the nonblocking listen fd. Throws on failure.
int listen_unix(const std::string& path, int backlog = 16);

/// Connects to a unix socket, retrying while the server is still coming up
/// (ECONNREFUSED / ENOENT), up to ~`timeout_ms`. Returns a BLOCKING fd —
/// callers that join a poll loop set_nonblocking() it themselves. Throws
/// once the deadline passes.
int connect_unix(const std::string& path, int timeout_ms = 10000);

/// One nonblocking buffered peer: bytes in -> complete messages out, replies
/// queued into `out_buf` and flushed as the socket accepts them. The flag
/// trio mirrors ndg_serve's client lifecycle: eof = peer closed its write
/// side (an unterminated tail still counts as a final line), draining =
/// close once out_buf empties, broken = write/protocol error, drop without
/// ceremony.
///
/// A connection starts in newline-JSON (`proto == kJson`, messages land in
/// `pending`) and may switch to bin1 framing (`upgrade_to_bin()`, messages
/// land in `frames`) — this is the FrameConn role folded into the same
/// struct, because negotiation happens mid-stream on a live connection and
/// the buffered bytes must carry over losslessly.
struct LineConn {
  /// Input bounds. A connection whose unterminated line exceeds
  /// kMaxLineBytes is marked broken — no forward progress is possible and
  /// letting it grow hands a hostile client unbounded server memory. A
  /// single read_input() pass stops pulling from the socket once in_buf
  /// holds kMaxReadBytes; the surplus waits in the kernel socket buffer
  /// (POLLIN stays set) until the caller has drained `pending`, so a
  /// writer that outpaces its drain is backpressured, not buffered.
  static constexpr std::size_t kMaxLineBytes = std::size_t{1} << 20;
  static constexpr std::size_t kMaxReadBytes = std::size_t{4} << 20;

  int fd = -1;
  dyn::WireProto proto = dyn::WireProto::kJson;
  std::string in_buf;
  std::string out_buf;
  std::deque<std::string> pending;   // complete JSON lines (kJson mode)
  std::deque<dyn::Frame> frames;     // complete frames (kBin mode)
  std::uint64_t bytes_in = 0;        // raw bytes read off the socket
  std::uint64_t bytes_out = 0;       // raw bytes written to the socket
  bool eof = false;
  bool draining = false;
  bool broken = false;

  /// Drains the socket (up to kMaxReadBytes per pass) and splits complete
  /// messages into `pending` (lines) or `frames`; an unterminated line past
  /// kMaxLineBytes or a frame length past kMaxFrameLen sets `broken`.
  void read_input();

  /// Writes as much of out_buf as the socket takes; EAGAIN leaves the rest
  /// for the next POLLOUT, a hard error sets `broken`.
  void flush();

  void queue_line(const std::string& line) {
    if (broken) return;
    out_buf += line;
    out_buf += '\n';
    flush();
  }

  /// Appends one frame WITHOUT flushing — the writev-style batching path: a
  /// drain pass queues every frame it produces (a record, a reply burst, a
  /// run of snapshot chunks) and the caller flushes once, so a multi-message
  /// exchange costs one write syscall instead of one per message.
  void queue_frame(dyn::FrameType type, std::string_view payload) {
    if (broken) return;
    append_frame(out_buf, type, payload);
  }

  /// Switches input parsing to bin1 frames. Called while handling the hello
  /// line, possibly with MORE bytes already buffered behind it (a client may
  /// pipeline hello + frames in one write): the already-split lines are
  /// rejoined with their newlines and re-parsed as frame bytes, so the
  /// upgrade is lossless at any byte boundary.
  void upgrade_to_bin();

  /// True when the connection has nothing left to do and can be closed.
  [[nodiscard]] bool finished() const {
    return broken || (draining && out_buf.empty()) ||
           (eof && pending.empty() && frames.empty() && out_buf.empty());
  }

  void close_fd();

 private:
  void parse_frames();
};

// Well-known socket names inside a tier run directory.
[[nodiscard]] inline std::string coord_sock(const std::string& dir) {
  return dir + "/coord.sock";
}
[[nodiscard]] inline std::string rep_sock(const std::string& dir) {
  return dir + "/rep.sock";
}
[[nodiscard]] inline std::string replica_sock(const std::string& dir,
                                              std::size_t k) {
  return dir + "/replica-" + std::to_string(k) + ".sock";
}

}  // namespace ndg::tier
