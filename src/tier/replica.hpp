#pragma once
// Worker replica of the serving tier (docs/TIER.md).
//
// A replica owns a full DynGraph + IncrementalEngine of its own but never
// validates a mutation: it connects to the coordinator's replication socket,
// announces its cursor (`sync`), and replays whatever arrives strictly in
// sequence — batch records through IncrementalEngine::replay_epoch (same
// warm-or-cold gate decision the coordinator made, taken independently from
// the replica's own EligibilityGate), compaction fences through
// compact_now(), and full snapshots by rebuilding the graph from the shipped
// canonical edge list and cold-recomputing. Each applied record is acked
// with the seq + epoch it brought the replica to; the ack is what releases
// the coordinator's window-of-1 for the next record.
//
// Concurrently, the replica serves reads on its own socket
// (<dir>/replica-K.sock). Replies carry the replica's epoch WATERMARK — the
// epoch of the last record it applied — so a client can tell how stale the
// answer is relative to the coordinator. Serving stale values is exactly the
// license the paper's Theorem 2 grants for monotone programs: a lagging
// replica's state is a valid intermediate state of the computation, and
// replaying the missing records from it converges to the same fixed point a
// fresh cold run would reach (docs/TIER.md spells out the argument).
//
// Chaos injection comes in two flavours (--chaos=hold:<ms>|stale:<records>,
// docs/TIER.md, docs/DELAY.md):
//   hold:  the replica sleeps that long before applying EACH replication
//          record or snapshot, so a test can hold a replica back until its
//          cursor falls past the coordinator's bounded history and the
//          snapshot path is forced.
//   stale: the replica applies records at full speed but SERVES reads from a
//          retained state up to N records old — the serving-tier analogue of
//          the engines' bounded propagation delay d: every answer is a real
//          state the replica passed through at most N records ago, stamped
//          with that state's honest epoch. Theorem 2's stale-read license is
//          exactly what makes this sound for monotone programs.

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dyn/dyn_graph.hpp"
#include "dyn/eligibility_gate.hpp"
#include "dyn/incremental.hpp"
#include "dyn/replication.hpp"
#include "dyn/wire.hpp"
#include "graph/graph.hpp"
#include "tier/coordinator.hpp"  // tier_error / tier_value_field
#include "tier/net.hpp"

namespace ndg::tier {

struct ReplicaOptions {
  std::size_t id = 0;
  std::string dir;
  std::uint32_t chaos_lag_ms = 0;  // hold: sleep before applying each record
  /// stale: serve reads from a retained state up to this many records old
  /// (0 = serve the latest applied state, no chaos).
  std::uint32_t chaos_stale_records = 0;
  /// Negotiate bin1 framing on the replication stream: records and
  /// snapshots arrive as frames, acks leave as frames (docs/TIER.md).
  bool binary = false;
};

template <VertexProgram Program>
class Replica {
 public:
  /// `graph_opts` is kept (minus its base_weight, which a snapshot replaces
  /// with the shipped weights) so a re-seeded graph keeps the same
  /// compaction threshold and memory placement as the original.
  Replica(dyn::DynGraph graph, Program prog, dyn::EligibilityGate gate,
          EngineOptions eopts, dyn::DynEngine ekind,
          dyn::DynGraphOptions graph_opts, ReplicaOptions opts)
      : g_(std::move(graph)),
        prog_(std::move(prog)),
        gate_(std::move(gate)),
        eopts_(eopts),
        ekind_(ekind),
        graph_opts_(std::move(graph_opts)),
        opts_(std::move(opts)) {
    inc_.emplace(g_, prog_, gate_, eopts_, ekind_);
    inc_->recompute_cold();
    values_ = prog_.values();
    push_history();
    listen_fd_ = listen_unix(replica_sock(opts_.dir, opts_.id));
    rep_.fd = connect_unix(rep_sock(opts_.dir));
    set_nonblocking(rep_.fd);
    if (opts_.binary) {
      // Pipeline hello + the sync FRAME in one write: the coordinator
      // upgrades while handling the hello line and parses the rest of the
      // bytes as frames. Our own receive side stays line-mode until the
      // hello-ok line arrives (rep_hello_pending_).
      rep_hello_pending_ = true;
      rep_.out_buf += dyn::WireWriter()
                          .str("op", "hello")
                          .str("proto", dyn::kBinProtoName)
                          .finish();
      rep_.out_buf += '\n';
      rep_.queue_frame(dyn::FrameType::kSync,
                       dyn::encode_sync_bin(opts_.id, cursor_));
      rep_.flush();
    } else {
      rep_.queue_line(dyn::encode_sync(opts_.id, cursor_));
    }
  }

  ~Replica() {
    rep_.close_fd();
    for (auto& [id, c] : clients_) c.close_fd();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    ::unlink(replica_sock(opts_.dir, opts_.id).c_str());
  }

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  int run() {
    std::vector<pollfd> pfds;
    std::vector<std::uint64_t> owner;  // 0 = listener/replication stream
    while (!stop_) {
      pfds.clear();
      owner.clear();
      pfds.push_back({listen_fd_, POLLIN, 0});
      owner.push_back(0);
      {
        short ev = POLLIN;
        if (!rep_.out_buf.empty()) ev |= POLLOUT;
        pfds.push_back({rep_.fd, ev, 0});
        owner.push_back(0);
      }
      for (auto& [id, c] : clients_) {
        short ev = 0;
        if (!c.eof && !c.draining) ev |= POLLIN;
        if (!c.out_buf.empty()) ev |= POLLOUT;
        if (ev == 0) continue;
        pfds.push_back({c.fd, ev, 0});
        owner.push_back(id);
      }
      const int rc = ::poll(pfds.data(), pfds.size(), -1);
      if (rc < 0) {
        if (errno == EINTR) continue;
        std::cerr << "ndg_tier: replica " << opts_.id
                  << " poll failed: " << std::strerror(errno) << "\n";
        return 1;
      }
      for (std::size_t i = 0; i < pfds.size() && !stop_; ++i) {
        const short re = pfds[i].revents;
        if (re == 0) continue;
        if (pfds[i].fd == listen_fd_) {
          accept_clients();
        } else if (pfds[i].fd == rep_.fd) {
          if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) rep_.read_input();
          if ((re & POLLOUT) != 0) rep_.flush();
          drain_replication();
          // Coordinator gone: eof after the stream drained, or a failed ack
          // (it can close mid-replay if shutdown races an in-flight record).
          if (rep_.broken ||
              (rep_.eof && rep_.pending.empty() && rep_.frames.empty())) {
            stop_ = true;
          }
        } else if (auto it = clients_.find(owner[i]); it != clients_.end()) {
          LineConn& c = it->second;
          if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) c.read_input();
          if ((re & POLLOUT) != 0) c.flush();
          drain_client(c);
        }
      }
      reap();
    }
    return 0;
  }

 private:
  enum class StreamState {
    kIdle,           // expecting a record or snapshot header
    kRecordMuts,     // inside a batch record, `need_` rmut lines left
    kSnapshotEdges,  // inside a snapshot, `need_` sedge lines left
  };

  // --- Replication stream ---

  void drain_replication() {
    // Sequential, not either/or: the hello-ok upgrade can switch the proto
    // mid-pass with frames already buffered behind it.
    if (rep_.proto == dyn::WireProto::kJson) drain_replication_lines();
    if (rep_.proto == dyn::WireProto::kBin) drain_replication_frames();
  }

  void drain_replication_lines() {
    // Keep processing lines already read even if the ack path broke —
    // a trailing shutdown op must still be honoured (acks no-op when
    // broken).
    while (!stop_ && rep_.proto == dyn::WireProto::kJson &&
           !rep_.pending.empty()) {
      const std::string line = std::move(rep_.pending.front());
      rep_.pending.pop_front();
      if (line.empty()) continue;
      dyn::WireMessage msg;
      std::string err;
      std::string op;
      if (rep_hello_pending_) {
        // The only line a binary replica ever reads: the coordinator's
        // hello-ok. Anything else means the upgrade was rejected.
        bool ok = false;
        std::string proto;
        if (!parse_wire(line, msg, &err) || !msg.get_bool("ok", ok) || !ok ||
            !msg.get_string("proto", proto) || proto != dyn::kBinProtoName) {
          die("replication hello rejected: " + line);
          return;
        }
        rep_hello_pending_ = false;
        rep_.upgrade_to_bin();
        return;  // drain_replication falls through to the frame pump
      }
      if (!parse_wire(line, msg, &err) || !msg.get_string("op", op)) {
        die("bad replication line: " + err);
        return;
      }
      if (op == "shutdown") {
        // The coordinator streams snapshots in chunks, so a tier-wide stop
        // can land mid-record or mid-snapshot; honour it from any state.
        stop_ = true;
        break;
      }
      switch (state_) {
        case StreamState::kIdle:
          if (op == "replicate") {
            if (!parse_record_header(msg, cur_rec_, need_, &err)) {
              die(err);
              return;
            }
            if (need_ == 0) {
              complete_record();
            } else {
              state_ = StreamState::kRecordMuts;
            }
          } else if (op == "snapshot") {
            if (!parse_snapshot_header(msg, snap_header_, &err)) {
              die(err);
              return;
            }
            snap_edges_.clear();
            snap_weights_.clear();
            need_ = snap_header_.edges;
            if (need_ == 0) {
              install_snapshot();
            } else {
              state_ = StreamState::kSnapshotEdges;
            }
          } else {
            die("unexpected replication op: " + op);
            return;
          }
          break;
        case StreamState::kRecordMuts: {
          dyn::AppliedMutation m;
          if (op != "rmut" || !parse_applied(msg, m, &err)) {
            die("expected rmut: " + err);
            return;
          }
          cur_rec_.muts.push_back(m);
          if (--need_ == 0) complete_record();
          break;
        }
        case StreamState::kSnapshotEdges: {
          dyn::SnapshotEdge e;
          if (op != "sedge" || !parse_snapshot_edge(msg, e, &err)) {
            die("expected sedge: " + err);
            return;
          }
          snap_edges_.push_back(Edge{e.src, e.dst});
          snap_weights_.push_back(e.weight);
          if (--need_ == 0) install_snapshot();
          break;
        }
      }
    }
  }

  /// Frame replay: a whole batch record arrives in ONE kRepRecord frame (no
  /// kRecordMuts state on this path); snapshots keep the header → chunks →
  /// done shape with `need_` counting down per chunk.
  void drain_replication_frames() {
    while (!stop_ && !rep_.frames.empty()) {
      const dyn::Frame f = std::move(rep_.frames.front());
      rep_.frames.pop_front();
      std::string err;
      if (f.type == dyn::FrameType::kShutdown) {
        stop_ = true;
        return;
      }
      switch (f.type) {
        case dyn::FrameType::kRepRecord:
          if (state_ != StreamState::kIdle) {
            die("record frame inside a snapshot");
            return;
          }
          if (!dyn::decode_record_bin(f.payload, cur_rec_, &err)) {
            die(err);
            return;
          }
          complete_record();
          break;
        case dyn::FrameType::kSnapshot:
          if (state_ != StreamState::kIdle) {
            die("snapshot header inside a snapshot");
            return;
          }
          if (!dyn::decode_snapshot_header_bin(f.payload, snap_header_,
                                               &err)) {
            die(err);
            return;
          }
          snap_edges_.clear();
          snap_weights_.clear();
          need_ = snap_header_.edges;
          if (need_ == 0) {
            install_snapshot();
          } else {
            state_ = StreamState::kSnapshotEdges;
          }
          break;
        case dyn::FrameType::kSnapChunk: {
          if (state_ != StreamState::kSnapshotEdges) {
            die("unexpected snapshot chunk");
            return;
          }
          std::vector<dyn::SnapshotEdge> chunk;
          if (!dyn::decode_snapshot_chunk(f.payload, chunk, &err)) {
            die(err);
            return;
          }
          if (chunk.size() > need_) {
            die("snapshot chunk overruns header");
            return;
          }
          for (const dyn::SnapshotEdge& e : chunk) {
            snap_edges_.push_back(Edge{e.src, e.dst});
            snap_weights_.push_back(e.weight);
          }
          need_ -= chunk.size();
          if (need_ == 0) install_snapshot();
          break;
        }
        default:
          die("unexpected replication frame");
          return;
      }
    }
  }

  void chaos_hold() {
    if (opts_.chaos_lag_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.chaos_lag_ms));
    }
  }

  // --- Stale-serving chaos (bounded per-record staleness) ---

  /// Retains the just-applied state in the serving ring. The ring holds at
  /// most chaos_stale_records+1 states; reads are answered from its OLDEST
  /// entry, so the served state is at most chaos_stale_records behind the
  /// replica's applied watermark — a bounded delay, never an unbounded one.
  void push_history() {
    if (opts_.chaos_stale_records == 0) return;
    history_.push_back(ServedState{values_, epoch_, cursor_});
    while (history_.size() >
           static_cast<std::size_t>(opts_.chaos_stale_records) + 1) {
      history_.pop_front();
    }
  }

  [[nodiscard]] const std::vector<double>& serve_values() const {
    return history_.empty() ? values_ : history_.front().values;
  }
  [[nodiscard]] std::uint64_t serve_epoch() const {
    return history_.empty() ? epoch_ : history_.front().epoch;
  }
  /// How many applied records behind the watermark reads currently are.
  [[nodiscard]] std::uint64_t serve_lag() const {
    return history_.empty() ? 0 : history_.size() - 1;
  }

  void complete_record() {
    chaos_hold();
    if (cur_rec_.kind == dyn::RepKind::kBatch) {
      inc_->replay_epoch(cur_rec_.epoch, cur_rec_.muts,
                         cur_rec_.compact_after);
    } else {
      inc_->compact_now();
    }
    cursor_ = cur_rec_.seq;
    epoch_ = cur_rec_.epoch;
    values_ = prog_.values();
    push_history();
    ++records_replayed_;
    cur_rec_ = dyn::RepRecord{};
    state_ = StreamState::kIdle;
    send_ack();
  }

  void send_ack() {
    if (rep_.proto == dyn::WireProto::kBin) {
      rep_.queue_frame(dyn::FrameType::kAck,
                       dyn::encode_ack_bin(opts_.id, cursor_, epoch_));
      rep_.flush();
    } else {
      rep_.queue_line(dyn::encode_ack(opts_.id, cursor_, epoch_));
    }
  }

  /// Re-seed from a canonical snapshot: rebuild the base CSR from the
  /// shipped (src, dst)-sorted edge list — edge k gets id k, matching the
  /// coordinator's post-compaction ids — attach the shipped weights as the
  /// base weights, re-create the engine over the new graph and cold-run it.
  void install_snapshot() {
    chaos_hold();
    dyn::DynGraphOptions gopts = graph_opts_;
    auto weights =
        std::make_shared<std::vector<float>>(std::move(snap_weights_));
    gopts.base_weight = [weights](EdgeId e) { return (*weights)[e]; };
    inc_.reset();  // engine's DynGraph* would dangle across the swap
    g_ = dyn::DynGraph(
        Graph::build(snap_header_.vertices, std::move(snap_edges_)),
        std::move(gopts));
    snap_edges_ = EdgeList{};
    snap_weights_ = std::vector<float>{};
    inc_.emplace(g_, prog_, gate_, eopts_, ekind_);
    inc_->recompute_cold();
    values_ = prog_.values();
    cursor_ = snap_header_.seq;
    epoch_ = snap_header_.epoch;
    // A snapshot starts a fresh lineage: pre-snapshot states belong to a
    // graph this replica discarded, so stale serving must not hand them out.
    history_.clear();
    push_history();
    ++snapshots_installed_;
    state_ = StreamState::kIdle;
    send_ack();
  }

  void die(const std::string& what) {
    std::cerr << "ndg_tier: replica " << opts_.id << ": " << what << "\n";
    rep_.broken = true;
    stop_ = true;
  }

  // --- Read serving ---

  void accept_clients() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;
      }
      set_nonblocking(fd);
      LineConn& c = clients_[++next_client_id_];
      c.fd = fd;
      c.queue_line(dyn::WireWriter()
                       .boolean("ok", true)
                       .boolean("ready", true)
                       .str("role", "replica")
                       .u64("replica", opts_.id)
                       .str("algo", prog_.name())
                       .finish());
    }
  }

  void drain_client(LineConn& c) {
    if (c.proto == dyn::WireProto::kJson) drain_client_lines(c);
    if (c.proto == dyn::WireProto::kBin) drain_client_frames(c);
    c.flush();
  }

  void drain_client_lines(LineConn& c) {
    while (!c.draining && !c.broken && !c.pending.empty() &&
           c.proto == dyn::WireProto::kJson) {
      const std::string line = std::move(c.pending.front());
      c.pending.pop_front();
      if (line.empty() ||
          line.find_first_not_of(" \t\r") == std::string::npos) {
        continue;
      }
      dyn::WireMessage msg;
      std::string err;
      std::string op;
      if (!parse_wire(line, msg, &err)) {
        c.queue_line(tier_error("parse: " + err));
        continue;
      }
      if (!msg.get_string("op", op)) {
        c.queue_line(tier_error("missing field: op"));
        continue;
      }
      if (op == "hello") {
        std::string proto;
        if (!msg.get_string("proto", proto) || proto != dyn::kBinProtoName) {
          c.queue_line(tier_error("hello: unknown proto"));
          continue;
        }
        c.queue_line(dyn::WireWriter()
                         .boolean("ok", true)
                         .str("proto", dyn::kBinProtoName)
                         .finish());
        c.upgrade_to_bin();  // drain_client falls through to the frame pump
        return;
      }
      if (op == "query") {
        std::uint64_t v = 0;
        if (!msg.get_u64("vertex", v)) {
          c.queue_line(tier_error("query: missing field: vertex"));
        } else if (v >= serve_values().size()) {
          c.queue_line(
              tier_error("query: vertex out of range: " + std::to_string(v)));
        } else {
          dyn::WireWriter w;
          w.boolean("ok", true).u64("vertex", v);
          tier_value_field(w, serve_values()[v]);
          c.queue_line(
              w.u64("epoch", serve_epoch()).u64("replica", opts_.id).finish());
        }
      } else if (op == "stats") {
        c.queue_line(stats_line());
      } else if (op == "quit") {
        c.queue_line(dyn::WireWriter()
                         .boolean("ok", true)
                         .boolean("bye", true)
                         .finish());
        c.draining = true;
      } else {
        c.queue_line(tier_error("unknown op: " + op));
      }
    }
  }

  [[nodiscard]] std::string stats_line() const {
    return dyn::WireWriter()
        .boolean("ok", true)
        .str("role", "replica")
        .u64("replica", opts_.id)
        .str("algo", prog_.name())
        .u64("epoch_watermark", epoch_)
        .u64("seq", cursor_)
        .u64("records_replayed", records_replayed_)
        .u64("snapshots_installed", snapshots_installed_)
        .u64("vertices", g_.num_vertices())
        .u64("live_edges", g_.num_live_edges())
        .u64("warm_runs", inc_->warm_runs())
        .u64("cold_runs", inc_->cold_runs())
        .u64("chaos_stale_records", opts_.chaos_stale_records)
        .u64("serving_epoch", serve_epoch())
        .u64("serving_lag", serve_lag())
        .finish();
  }

  /// Binary read serving: query replies carry the replica's epoch WATERMARK
  /// like the JSON path (the replica id travels only on the JSON shape —
  /// a binary client knows which socket it dialed).
  void drain_client_frames(LineConn& c) {
    while (!c.draining && !c.broken && !c.frames.empty()) {
      const dyn::Frame f = std::move(c.frames.front());
      c.frames.pop_front();
      std::string err;
      switch (f.type) {
        case dyn::FrameType::kQuery: {
          std::uint64_t v = 0;
          if (!dyn::decode_query(f.payload, v, &err)) {
            c.queue_frame(dyn::FrameType::kError, err);
            break;
          }
          if (v >= serve_values().size()) {
            c.queue_frame(
                dyn::FrameType::kError,
                "query: vertex out of range: " + std::to_string(v));
            break;
          }
          dyn::QueryReplyBin qr;
          qr.vertex = v;
          qr.value = serve_values()[v];
          qr.epoch = serve_epoch();
          c.queue_frame(dyn::FrameType::kQueryReply,
                        dyn::encode_query_reply(qr));
          break;
        }
        case dyn::FrameType::kStats:
          c.queue_frame(dyn::FrameType::kJson, stats_line());
          break;
        case dyn::FrameType::kQuit:
          c.queue_frame(dyn::FrameType::kBye, {});
          c.draining = true;
          break;
        default:
          c.queue_frame(dyn::FrameType::kError,
                        "unexpected frame type: " +
                            std::to_string(static_cast<unsigned>(f.type)));
          break;
      }
    }
  }

  void reap() {
    for (auto it = clients_.begin(); it != clients_.end();) {
      if (it->second.finished()) {
        it->second.close_fd();
        it = clients_.erase(it);
      } else {
        ++it;
      }
    }
  }

  dyn::DynGraph g_;
  Program prog_;
  dyn::EligibilityGate gate_;  // copied into each re-created engine
  EngineOptions eopts_;
  dyn::DynEngine ekind_;
  dyn::DynGraphOptions graph_opts_;
  ReplicaOptions opts_;
  std::optional<dyn::IncrementalEngine<Program>> inc_;
  std::vector<double> values_;

  /// One retained serving state for the stale chaos mode.
  struct ServedState {
    std::vector<double> values;
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;
  };
  std::deque<ServedState> history_;  // oldest first; front is served

  LineConn rep_;  // replication stream to the coordinator
  bool rep_hello_pending_ = false;  // bin1 requested, ok line not yet seen
  int listen_fd_ = -1;
  std::map<std::uint64_t, LineConn> clients_;
  std::uint64_t next_client_id_ = 0;

  StreamState state_ = StreamState::kIdle;
  dyn::RepRecord cur_rec_;
  dyn::SnapshotHeader snap_header_;
  EdgeList snap_edges_;
  std::vector<float> snap_weights_;
  std::uint64_t need_ = 0;
  std::uint64_t cursor_ = 0;  // last applied seq
  std::uint64_t epoch_ = 0;   // epoch watermark
  std::uint64_t records_replayed_ = 0;
  std::uint64_t snapshots_installed_ = 0;
  bool stop_ = false;
};

}  // namespace ndg::tier
