#include "tier/net.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace ndg::tier {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  ::unlink(path.c_str());
  // sockaddr_un -> sockaddr is the BSD socket ABI, not edge-slot aliasing.
  // ndg-lint: allow(raw-cast)
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    throw std::runtime_error("bind/listen failed on " + path);
  }
  set_nonblocking(fd);
  return fd;
}

int connect_unix(const std::string& path, int timeout_ms) {
  const sockaddr_un addr = make_addr(path);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket() failed");
    // Same BSD socket ABI cast as bind() above.  ndg-lint: allow(raw-cast)
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    // The server may not have bound its socket yet; only these two errors
    // mean "keep waiting".
    if (err != ECONNREFUSED && err != ENOENT) {
      throw std::runtime_error(std::string("connect failed on ") + path +
                               ": " + std::strerror(err));
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("connect timed out on " + path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void LineConn::read_input() {
  char chunk[4096];
  while (in_buf.size() < kMaxReadBytes) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n > 0) {
      in_buf.append(chunk, static_cast<std::size_t>(n));
      bytes_in += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    eof = true;
    break;
  }
  if (proto == dyn::WireProto::kBin) {
    parse_frames();
    return;
  }
  std::size_t nl;
  while ((nl = in_buf.find('\n')) != std::string::npos) {
    pending.push_back(in_buf.substr(0, nl));
    in_buf.erase(0, nl + 1);
  }
  if (eof && !in_buf.empty()) {
    pending.push_back(std::exchange(in_buf, {}));
  }
  // What remains is one unterminated line; past the bound it can never be
  // completed within memory limits, so drop the connection.
  if (in_buf.size() > kMaxLineBytes) broken = true;
}

void LineConn::parse_frames() {
  dyn::Frame f;
  for (;;) {
    const dyn::FrameParse rc = dyn::extract_frame(in_buf, f);
    if (rc == dyn::FrameParse::kOk) {
      frames.push_back(std::move(f));
      continue;
    }
    // kBad is unrecoverable: there is no resync point in a framed stream
    // after a corrupt length, so the connection is dropped.
    if (rc == dyn::FrameParse::kBad) broken = true;
    return;
  }
}

void LineConn::upgrade_to_bin() {
  // Reconstruct the unconsumed byte stream exactly: lines were only ever
  // split on real newlines, so pending + '\n' + ... + in_buf is the
  // original image of everything buffered after the hello line.
  std::string rest;
  for (const std::string& l : pending) {
    rest += l;
    rest += '\n';
  }
  rest += in_buf;
  in_buf = std::move(rest);
  pending.clear();
  proto = dyn::WireProto::kBin;
  parse_frames();
}

void LineConn::flush() {
  while (!out_buf.empty()) {
    const ssize_t n = ::write(fd, out_buf.data(), out_buf.size());
    if (n > 0) {
      out_buf.erase(0, static_cast<std::size_t>(n));
      bytes_out += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    broken = true;
    return;
  }
}

void LineConn::close_fd() {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace ndg::tier
