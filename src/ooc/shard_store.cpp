#include "ooc/shard_store.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace ndg {

namespace fs = std::filesystem;

ShardStore::ShardStore(std::string directory, const ShardPlan& plan)
    : dir_(std::move(directory)), plan_(&plan) {
  fs::create_directories(dir_);
}

std::string ShardStore::shard_path(std::size_t s) const {
  return dir_ + "/shard_" + std::to_string(s) + ".bin";
}

void ShardStore::write_initial(const std::vector<std::uint64_t>& edge_values) {
  for (std::size_t s = 0; s < plan_->num_shards(); ++s) {
    std::vector<std::uint64_t> values;
    values.reserve(plan_->shard_edges[s].size());
    for (const EdgeId e : plan_->shard_edges[s]) {
      NDG_ASSERT(e < edge_values.size());
      values.push_back(edge_values[e]);
    }
    store_shard(s, values);
  }
}

std::vector<std::uint64_t> ShardStore::load_shard(std::size_t s) const {
  return load_window(s, 0, plan_->shard_edges[s].size());
}

void ShardStore::store_shard(std::size_t s,
                             const std::vector<std::uint64_t>& values) const {
  NDG_ASSERT(values.size() == plan_->shard_edges[s].size());
  std::ofstream out(shard_path(s), std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("shard store: cannot write " + shard_path(s));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(std::uint64_t)));
  if (!out) throw std::runtime_error("shard store: write failed " + shard_path(s));
}

std::vector<std::uint64_t> ShardStore::load_window(std::size_t s,
                                                   std::size_t begin,
                                                   std::size_t end) const {
  NDG_ASSERT(begin <= end && end <= plan_->shard_edges[s].size());
  std::vector<std::uint64_t> values(end - begin);
  if (values.empty()) return values;
  std::ifstream in(shard_path(s), std::ios::binary);
  if (!in) throw std::runtime_error("shard store: cannot read " + shard_path(s));
  in.seekg(static_cast<std::streamoff>(begin * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(std::uint64_t)));
  if (!in) throw std::runtime_error("shard store: short read " + shard_path(s));
  return values;
}

void ShardStore::store_window(std::size_t s, std::size_t begin,
                              const std::vector<std::uint64_t>& values) const {
  if (values.empty()) return;
  NDG_ASSERT(begin + values.size() <= plan_->shard_edges[s].size());
  std::fstream out(shard_path(s),
                   std::ios::binary | std::ios::in | std::ios::out);
  if (!out) throw std::runtime_error("shard store: cannot update " + shard_path(s));
  out.seekp(static_cast<std::streamoff>(begin * sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(std::uint64_t)));
  if (!out) throw std::runtime_error("shard store: window write failed");
}

void ShardStore::read_back(std::vector<std::uint64_t>& edge_values) const {
  for (std::size_t s = 0; s < plan_->num_shards(); ++s) {
    const auto values = load_shard(s);
    for (std::size_t i = 0; i < values.size(); ++i) {
      const EdgeId e = plan_->shard_edges[s][i];
      NDG_ASSERT(e < edge_values.size());
      edge_values[e] = values[i];
    }
  }
}

std::uint64_t ShardStore::bytes_on_disk() const {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < plan_->num_shards(); ++s) {
    std::error_code ec;
    const auto size = fs::file_size(shard_path(s), ec);
    if (!ec) total += size;
  }
  return total;
}

}  // namespace ndg
