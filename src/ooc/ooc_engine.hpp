#pragma once
// Out-of-core deterministic engine: GraphChi's Parallel Sliding Windows with
// real disk I/O. Edge data lives in shard files (ooc/shard_store.hpp); one
// iteration processes the execution intervals in order, loading interval i's
// memory shard (its in-edges) plus one contiguous window of every other
// shard (its out-edges), running the interval's scheduled updates in label
// order, and writing the dirty ranges back.
//
// Execution order equals run_deterministic's global ascending label order,
// so results are BIT-IDENTICAL to the in-memory deterministic engine — the
// property that made GraphChi's out-of-core design transparent to algorithm
// authors, and which the tests assert. Intervals with no scheduled updates
// are skipped without touching disk (selective scheduling).

#include <vector>

#include "engine/frontier.hpp"
#include "engine/options.hpp"
#include "engine/vertex_program.hpp"
#include "ooc/shard_store.hpp"
#include "util/timer.hpp"

namespace ndg {

struct OocResult : EngineResult {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t intervals_processed = 0;
  std::uint64_t intervals_skipped = 0;  // selective scheduling wins
};

namespace detail {

/// Resolves canonical edge ids to the loaded buffers of the current interval.
class OocEdgeView {
 public:
  OocEdgeView(const Graph& g, const ShardPlan& plan, std::size_t interval,
              std::vector<std::uint64_t>& memory_shard,
              std::vector<std::vector<std::uint64_t>>& windows)
      : g_(&g), plan_(&plan), interval_(interval),
        memory_shard_(&memory_shard), windows_(&windows) {}

  [[nodiscard]] std::uint64_t& slot(EdgeId e) const {
    const std::size_t target_shard =
        plan_->intervals.interval_of(g_->edge_target(e));
    if (target_shard == interval_) {
      // In-edge of this interval: memory shard.
      return (*memory_shard_)[plan_->position_in_shard(interval_, e)];
    }
    // Out-edge of this interval: sliding window of the target's shard.
    const auto [begin, end] = plan_->windows[target_shard][interval_];
    const std::size_t pos = plan_->position_in_shard(target_shard, e);
    NDG_ASSERT_MSG(pos >= begin && pos < end,
                   "edge outside this interval's window — update scope "
                   "violation");
    return (*windows_)[target_shard][pos - begin];
  }

 private:
  const Graph* g_;
  const ShardPlan* plan_;
  std::size_t interval_;
  std::vector<std::uint64_t>* memory_shard_;
  std::vector<std::vector<std::uint64_t>>* windows_;
};

template <EdgePod ED>
class OocContext {
 public:
  OocContext(const Graph& g, const OocEdgeView& view, Frontier& frontier)
      : g_(&g), view_(&view), frontier_(&frontier) {}

  void begin(VertexId v, std::size_t iteration) {
    v_ = v;
    iter_ = iteration;
  }

  [[nodiscard]] VertexId vertex() const { return v_; }
  [[nodiscard]] std::size_t iteration() const { return iter_; }
  [[nodiscard]] const Graph& graph() const { return *g_; }

  [[nodiscard]] std::span<const InEdge> in_edges() const {
    return g_->in_edges(v_);
  }
  [[nodiscard]] std::span<const VertexId> out_neighbors() const {
    return g_->out_neighbors(v_);
  }
  [[nodiscard]] EdgeId out_edge_id(std::size_t k) const {
    return g_->out_edges_begin(v_) + k;
  }

  [[nodiscard]] ED read(EdgeId e) {
    return detail::from_slot<ED>(view_->slot(e));
  }

  void write(EdgeId e, VertexId other_endpoint, ED value) {
    view_->slot(e) = detail::to_slot(value);
    frontier_->schedule(other_endpoint);
  }

  void write_silent(EdgeId e, ED value) {
    view_->slot(e) = detail::to_slot(value);
  }

  [[nodiscard]] ED exchange(EdgeId e, ED value) {
    const ED old = read(e);
    write_silent(e, value);
    return old;
  }

  template <typename Fn>
  void accumulate(EdgeId e, VertexId other_endpoint, Fn fn) {
    write(e, other_endpoint, fn(read(e)));
  }

  void schedule(VertexId u) { frontier_->schedule(u); }

 private:
  const Graph* g_;
  const OocEdgeView* view_;
  Frontier* frontier_;
  VertexId v_ = kInvalidVertex;
  std::size_t iter_ = 0;
};

}  // namespace detail

template <VertexProgram Program>
OocResult run_ooc_deterministic(const Graph& g, Program& prog,
                                EdgeDataArray<typename Program::EdgeData>& edges,
                                const ShardPlan& plan,
                                const std::string& store_dir,
                                std::size_t max_iterations = 100000) {
  Timer timer;
  const std::size_t shards = plan.num_shards();

  // Preprocess: split the initialized edge data into shard files.
  ShardStore store(store_dir, plan);
  {
    std::vector<std::uint64_t> initial(edges.size());
    for (EdgeId e = 0; e < edges.size(); ++e) {
      // Quiescent snapshot into the shard store (no update is running).
      // ndg-lint: allow(raw-slots)
      initial[e] = edges.slots()[e].load(std::memory_order_relaxed);
    }
    store.write_initial(initial);
  }

  Frontier frontier(g.num_vertices());
  frontier.seed(prog.initial_frontier(g));

  OocResult result;
  std::vector<std::vector<std::uint64_t>> windows(shards);

  while (!frontier.empty() && result.iterations < max_iterations) {
    const auto& cur = frontier.current();
    result.frontier_sizes.push_back(cur.size());

    std::size_t pos = 0;
    for (std::size_t i = 0; i < shards; ++i) {
      const VertexId hi = plan.intervals.boundaries[i + 1];
      const std::size_t first = pos;
      while (pos < cur.size() && cur[pos] < hi) ++pos;
      if (pos == first) {
        ++result.intervals_skipped;  // nothing scheduled here: no I/O
        continue;
      }

      // Load the memory shard and every sliding window.
      std::vector<std::uint64_t> memory_shard = store.load_shard(i);
      result.bytes_read += memory_shard.size() * sizeof(std::uint64_t);
      for (std::size_t s = 0; s < shards; ++s) {
        if (s == i) continue;
        const auto [wb, we] = plan.windows[s][i];
        windows[s] = store.load_window(s, wb, we);
        result.bytes_read += windows[s].size() * sizeof(std::uint64_t);
      }

      detail::OocEdgeView view(g, plan, i, memory_shard, windows);
      detail::OocContext<typename Program::EdgeData> ctx(g, view, frontier);
      for (std::size_t k = first; k < pos; ++k) {
        ctx.begin(cur[k], result.iterations);
        prog.update(cur[k], ctx);
        ++result.updates;
      }

      // Write the dirty ranges back.
      store.store_shard(i, memory_shard);
      result.bytes_written += memory_shard.size() * sizeof(std::uint64_t);
      for (std::size_t s = 0; s < shards; ++s) {
        if (s == i) continue;
        const auto [wb, we] = plan.windows[s][i];
        (void)we;
        store.store_window(s, wb, windows[s]);
        result.bytes_written += windows[s].size() * sizeof(std::uint64_t);
      }
      ++result.intervals_processed;
    }

    frontier.advance();
    ++result.iterations;
  }

  // Gather the final edge state back into the caller's array.
  {
    std::vector<std::uint64_t> final_values(edges.size());
    store.read_back(final_values);
    for (EdgeId e = 0; e < edges.size(); ++e) {
      // Quiescent write-back from the shard store.  ndg-lint: allow(raw-slots)
      edges.slots()[e].store(final_values[e], std::memory_order_relaxed);
    }
  }

  result.converged = frontier.empty();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace ndg
