#pragma once
// On-disk shard storage: one raw binary file of 8-byte edge values per
// shard, parallel to ShardPlan::shard_edges[s]. Windows are read and written
// as contiguous file ranges — the real I/O pattern of GraphChi's sliding
// windows, not an in-memory simulation of it.

#include <cstdint>
#include <string>
#include <vector>

#include "ooc/shard_plan.hpp"

namespace ndg {

class ShardStore {
 public:
  /// Creates/overwrites the store under `directory` (created if missing).
  ShardStore(std::string directory, const ShardPlan& plan);

  /// Splits a full edge-value array (indexed by canonical edge id) into the
  /// shard files. Called once after Program::init.
  void write_initial(const std::vector<std::uint64_t>& edge_values);

  /// Reads a whole shard (the interval's memory shard).
  [[nodiscard]] std::vector<std::uint64_t> load_shard(std::size_t s) const;
  void store_shard(std::size_t s, const std::vector<std::uint64_t>& values) const;

  /// Reads/writes the contiguous window [begin, end) of shard s.
  [[nodiscard]] std::vector<std::uint64_t> load_window(std::size_t s,
                                                       std::size_t begin,
                                                       std::size_t end) const;
  void store_window(std::size_t s, std::size_t begin,
                    const std::vector<std::uint64_t>& values) const;

  /// Gathers all shard files back into a canonical-edge-id-indexed array.
  void read_back(std::vector<std::uint64_t>& edge_values) const;

  /// Bytes currently on disk across all shard files.
  [[nodiscard]] std::uint64_t bytes_on_disk() const;

 private:
  [[nodiscard]] std::string shard_path(std::size_t s) const;

  std::string dir_;
  const ShardPlan* plan_;
};

}  // namespace ndg
