#pragma once
// Nondeterministic execution INSIDE the out-of-core PSW engine — the paper's
// actual experimental configuration: its patch exposes GraphChi's
// nondeterministic scheduler, which runs an interval's updates on all cores
// with no intra-interval ordering, racing on the loaded shard/window buffers
// under one of the Section III atomicity methods. Intervals still execute in
// order (that part is dictated by the disk layout), so nondeterminism lives
// within an interval — exactly the Fig. 3 "NE" setup.
//
// The buffer accesses go through C++20 std::atomic_ref (or a per-edge lock,
// or deliberate plain access for the "architecture support" method), mapped
// from the same AtomicityMode enum as the in-memory engines.

#include <atomic>
#include <optional>

#include "atomics/access_policy.hpp"
#include "atomics/lock_table.hpp"
#include "ooc/ooc_engine.hpp"
#include "util/thread_team.hpp"

namespace ndg {

namespace detail {

/// Access policies over raw uint64 buffer slots (the loaded windows).
struct OocAlignedAccess {
  [[nodiscard]] std::uint64_t load(std::uint64_t& slot) const {
    return *const_cast<const volatile std::uint64_t*>(&slot);
  }
  void store(std::uint64_t& slot, std::uint64_t v) const {
    *const_cast<volatile std::uint64_t*>(&slot) = v;
  }
};

struct OocRelaxedAccess {
  [[nodiscard]] std::uint64_t load(std::uint64_t& slot) const {
    return std::atomic_ref<std::uint64_t>(slot).load(std::memory_order_relaxed);
  }
  void store(std::uint64_t& slot, std::uint64_t v) const {
    std::atomic_ref<std::uint64_t>(slot).store(v, std::memory_order_relaxed);
  }
};

struct OocSeqCstAccess {
  [[nodiscard]] std::uint64_t load(std::uint64_t& slot) const {
    return std::atomic_ref<std::uint64_t>(slot).load(std::memory_order_seq_cst);
  }
  void store(std::uint64_t& slot, std::uint64_t v) const {
    std::atomic_ref<std::uint64_t>(slot).store(v, std::memory_order_seq_cst);
  }
};

struct OocLockedAccess {
  EdgeLockTable* locks = nullptr;
  EdgeId edge = 0;  // set by the context before each access

  [[nodiscard]] std::uint64_t load(std::uint64_t& slot) const {
    EdgeLockGuard guard(*locks, edge);
    return slot;
  }
  void store(std::uint64_t& slot, std::uint64_t v) const {
    EdgeLockGuard guard(*locks, edge);
    slot = v;
  }
};

template <EdgePod ED, typename Access>
class OocNeContext {
 public:
  OocNeContext(const Graph& g, const OocEdgeView& view, Frontier& frontier,
               Access access)
      : g_(&g), view_(&view), frontier_(&frontier), access_(access) {}

  void begin(VertexId v, std::size_t iteration) {
    v_ = v;
    iter_ = iteration;
  }

  [[nodiscard]] VertexId vertex() const { return v_; }
  [[nodiscard]] std::size_t iteration() const { return iter_; }
  [[nodiscard]] const Graph& graph() const { return *g_; }

  [[nodiscard]] std::span<const InEdge> in_edges() const {
    return g_->in_edges(v_);
  }
  [[nodiscard]] std::span<const VertexId> out_neighbors() const {
    return g_->out_neighbors(v_);
  }
  [[nodiscard]] EdgeId out_edge_id(std::size_t k) const {
    return g_->out_edges_begin(v_) + k;
  }

  [[nodiscard]] ED read(EdgeId e) {
    prime(e);
    return detail::from_slot<ED>(access_.load(view_->slot(e)));
  }

  void write(EdgeId e, VertexId other_endpoint, ED value) {
    prime(e);
    access_.store(view_->slot(e), detail::to_slot(value));
    frontier_->schedule(other_endpoint);
  }

  void write_silent(EdgeId e, ED value) {
    prime(e);
    access_.store(view_->slot(e), detail::to_slot(value));
  }

  [[nodiscard]] ED exchange(EdgeId e, ED value) {
    const ED old = read(e);
    write_silent(e, value);
    return old;
  }

  template <typename Fn>
  void accumulate(EdgeId e, VertexId other_endpoint, Fn fn) {
    write(e, other_endpoint, fn(read(e)));
  }

  void schedule(VertexId u) { frontier_->schedule(u); }

 private:
  void prime(EdgeId e) {
    if constexpr (std::is_same_v<Access, OocLockedAccess>) {
      access_.edge = e;
    }
  }

  const Graph* g_;
  const OocEdgeView* view_;
  Frontier* frontier_;
  Access access_;
  VertexId v_ = kInvalidVertex;
  std::size_t iter_ = 0;
};

template <VertexProgram Program, typename Access>
OocResult run_ooc_nondet_impl(const Graph& g, Program& prog,
                              EdgeDataArray<typename Program::EdgeData>& edges,
                              const ShardPlan& plan,
                              const std::string& store_dir, Access access,
                              const EngineOptions& opts) {
  Timer timer;
  const std::size_t shards = plan.num_shards();
  const std::size_t nt = std::max<std::size_t>(1, opts.num_threads);

  ShardStore store(store_dir, plan);
  {
    std::vector<std::uint64_t> initial(edges.size());
    for (EdgeId e = 0; e < edges.size(); ++e) {
      // Quiescent snapshot into the shard store (no update is running).
      // ndg-lint: allow(raw-slots)
      initial[e] = edges.slots()[e].load(std::memory_order_relaxed);
    }
    store.write_initial(initial);
  }

  Frontier frontier(g.num_vertices(), opts.frontier_policy,
                    opts.frontier_dense_divisor);
  frontier.seed(prog.initial_frontier(g));

  OocResult result;
  result.per_thread_updates.assign(nt, 0);
  std::vector<std::vector<std::uint64_t>> windows(shards);
  std::atomic<std::uint64_t> updates{0};

  // One persistent team for all per-interval dispatches of the run (the
  // dispatch sits inside the interval × iteration loops).
  std::optional<ThreadTeam> team;
  if (nt > 1) team.emplace(nt);

  std::vector<VertexId> interval_vertices;  // reused per interval
  while (!frontier.empty() && result.iterations < opts.max_iterations) {
    result.frontier_sizes.push_back(frontier.size());
    result.frontier_dense.push_back(frontier.dense() ? 1 : 0);

    for (std::size_t i = 0; i < shards; ++i) {
      // Interval query against the hybrid frontier: ascending vertex list for
      // [lo, hi) in either representation (dense PageRank-style frontiers
      // skip the full-list materialization the old sparse scan paid).
      const VertexId lo = plan.intervals.boundaries[i];
      const VertexId hi = plan.intervals.boundaries[i + 1];
      interval_vertices.clear();
      frontier.collect_range(lo, hi, interval_vertices);
      if (interval_vertices.empty()) {
        ++result.intervals_skipped;
        continue;
      }

      std::vector<std::uint64_t> memory_shard = store.load_shard(i);
      result.bytes_read += memory_shard.size() * sizeof(std::uint64_t);
      for (std::size_t s = 0; s < shards; ++s) {
        if (s == i) continue;
        const auto [wb, we] = plan.windows[s][i];
        windows[s] = store.load_window(s, wb, we);
        result.bytes_read += windows[s].size() * sizeof(std::uint64_t);
      }

      const OocEdgeView view(g, plan, i, memory_shard, windows);
      // The paper's NE: the interval's scheduled updates race across all
      // threads (static blocks, small-label-first within each thread).
      const std::size_t count = interval_vertices.size();
      const auto run_block = [&](std::size_t b, std::size_t e,
                                 std::size_t tid) {
        OocNeContext<typename Program::EdgeData, Access> ctx(g, view, frontier,
                                                             access);
        std::uint64_t local = 0;
        for (std::size_t k = b; k < e; ++k) {
          ctx.begin(interval_vertices[k], result.iterations);
          prog.update(interval_vertices[k], ctx);
          ++local;
        }
        result.per_thread_updates[tid] += local;  // exclusive slot
        updates.fetch_add(local, std::memory_order_relaxed);
      };
      if (nt > 1) {
        parallel_for_blocks(count, *team, run_block);
      } else {
        run_block(0, count, 0);
      }

      store.store_shard(i, memory_shard);
      result.bytes_written += memory_shard.size() * sizeof(std::uint64_t);
      for (std::size_t s = 0; s < shards; ++s) {
        if (s == i) continue;
        const auto [wb, we] = plan.windows[s][i];
        (void)we;
        store.store_window(s, wb, windows[s]);
        result.bytes_written += windows[s].size() * sizeof(std::uint64_t);
      }
      ++result.intervals_processed;
    }

    frontier.advance();
    ++result.iterations;
  }

  result.updates = updates.load();
  {
    std::vector<std::uint64_t> final_values(edges.size());
    store.read_back(final_values);
    for (EdgeId e = 0; e < edges.size(); ++e) {
      // Quiescent write-back from the shard store.  ndg-lint: allow(raw-slots)
      edges.slots()[e].store(final_values[e], std::memory_order_relaxed);
    }
  }
  result.converged = frontier.empty();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace detail

/// The paper's patched-GraphChi configuration: PSW out-of-core execution
/// with nondeterministic intra-interval parallelism under the atomicity
/// method of opts.mode.
template <VertexProgram Program>
OocResult run_ooc_nondeterministic(
    const Graph& g, Program& prog,
    EdgeDataArray<typename Program::EdgeData>& edges, const ShardPlan& plan,
    const std::string& store_dir, const EngineOptions& opts) {
  switch (opts.mode) {
    case AtomicityMode::kLocked: {
      EdgeLockTable locks(g.num_edges());
      return detail::run_ooc_nondet_impl(g, prog, edges, plan, store_dir,
                                         detail::OocLockedAccess{&locks}, opts);
    }
    case AtomicityMode::kAligned:
      return detail::run_ooc_nondet_impl(g, prog, edges, plan, store_dir,
                                         detail::OocAlignedAccess{}, opts);
    case AtomicityMode::kRelaxed:
      return detail::run_ooc_nondet_impl(g, prog, edges, plan, store_dir,
                                         detail::OocRelaxedAccess{}, opts);
    case AtomicityMode::kSeqCst:
      return detail::run_ooc_nondet_impl(g, prog, edges, plan, store_dir,
                                         detail::OocSeqCstAccess{}, opts);
  }
  return {};
}

}  // namespace ndg
