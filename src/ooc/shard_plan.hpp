#pragma once
// Shard planning — GraphChi's Parallel Sliding Windows preprocessing, in
// full: vertices are split into P execution intervals (graph/intervals.hpp),
// and the edges into P shards, shard s holding every edge whose TARGET lies
// in interval s, ordered by source. With that ordering, the edges of shard s
// whose SOURCE lies in interval j form one contiguous sub-range — the
// "sliding window" (s, j) — so processing interval j touches its in-edge
// shard (the memory shard) plus exactly one contiguous window of every other
// shard. That is the disk-access pattern that lets GraphChi process
// billion-edge graphs on one PC, reproduced here over the canonical edge-id
// space.

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/intervals.hpp"

namespace ndg {

struct ShardPlan {
  IntervalPlan intervals;
  /// shard_edges[s]: canonical ids of edges with target in interval s,
  /// ascending (canonical order is source-major, so this is source-sorted —
  /// exactly GraphChi's shard ordering).
  std::vector<std::vector<EdgeId>> shard_edges;
  /// windows[s][j]: the [begin, end) index range of shard_edges[s] whose
  /// sources lie in interval j (the sliding window of shard s for interval j).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> windows;

  [[nodiscard]] std::size_t num_shards() const { return shard_edges.size(); }

  /// Index of edge `e` within shard `s` (binary search; e must be in s).
  [[nodiscard]] std::size_t position_in_shard(std::size_t s, EdgeId e) const;
};

ShardPlan make_shard_plan(const Graph& g, std::size_t num_shards);

}  // namespace ndg
