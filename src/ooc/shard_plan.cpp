#include "ooc/shard_plan.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ndg {

std::size_t ShardPlan::position_in_shard(std::size_t s, EdgeId e) const {
  NDG_ASSERT(s < shard_edges.size());
  const auto& edges = shard_edges[s];
  const auto it = std::lower_bound(edges.begin(), edges.end(), e);
  NDG_ASSERT_MSG(it != edges.end() && *it == e, "edge not in shard");
  return static_cast<std::size_t>(std::distance(edges.begin(), it));
}

ShardPlan make_shard_plan(const Graph& g, std::size_t num_shards) {
  NDG_ASSERT(num_shards >= 1);
  ShardPlan plan;
  plan.intervals = make_intervals(g, num_shards);

  plan.shard_edges.assign(num_shards, {});
  // Canonical ids ascend with (source, target); walking them in order keeps
  // every shard source-sorted for free.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    plan.shard_edges[plan.intervals.interval_of(g.edge_target(e))].push_back(e);
  }

  plan.windows.assign(num_shards, {});
  for (std::size_t s = 0; s < num_shards; ++s) {
    const auto& edges = plan.shard_edges[s];
    plan.windows[s].resize(num_shards);
    std::size_t pos = 0;
    for (std::size_t j = 0; j < num_shards; ++j) {
      const std::size_t begin = pos;
      const VertexId hi = plan.intervals.boundaries[j + 1];
      while (pos < edges.size() && g.edge_source(edges[pos]) < hi) ++pos;
      plan.windows[s][j] = {begin, pos};
    }
    NDG_ASSERT_MSG(pos == edges.size(), "windows must tile the shard");
  }
  return plan;
}

}  // namespace ndg
