#pragma once
// DelaySpec — the runtime knob that turns the paper's propagation delay `d`
// (Section II, Definitions 1-3) into a controlled experimental variable on
// the hardware engines, after the delayed asynchronous model of Blanco et
// al. (PAPERS.md, arXiv:2110.01409).
//
// This header is a dependency leaf on purpose: engine/options.hpp embeds a
// DelaySpec in EngineOptions, while the machinery that interprets it (queues,
// wrapped engines) lives one layer up in src/delay/ (docs/DELAY.md).

#include <cstddef>
#include <cstdint>
#include <string>

namespace ndg {

/// How each buffered write draws its hold time (in the writing thread's own
/// update steps — see docs/DELAY.md for the step clock).
enum class DelayKind : std::uint8_t {
  /// Every write is held exactly `steps` steps — the simulator's fixed-d
  /// schedule, realized on hardware.
  kFixed,
  /// Each write draws a seeded hold in [0, steps] — per-write noise, the
  /// hardware twin of SimOptions::delay_jitter.
  kUniform,
  /// Each THREAD draws one seeded constant hold in
  /// [steps - jitter, steps + jitter] (clamped at 0) at team start — models
  /// heterogeneous cores / a straggler thread.
  kPerThread,
};

[[nodiscard]] const char* to_string(DelayKind k);
/// Parses "fixed" | "uniform" | "per-thread"; returns false on anything else.
bool parse_delay_kind(const std::string& s, DelayKind& out);

struct DelaySpec {
  /// The propagation delay d. 0 disables the delay layer entirely: the
  /// delayed entry points dispatch straight to the undelayed baseline
  /// engines, so d=0 is exact parity by construction.
  std::size_t steps = 0;
  DelayKind kind = DelayKind::kFixed;
  /// Spread for kPerThread (ignored by the other kinds).
  std::size_t jitter = 0;
  /// Seeds the kUniform per-write draws and the kPerThread per-thread draws.
  std::uint64_t seed = 1;

  [[nodiscard]] bool enabled() const { return steps > 0; }

  /// Largest hold any write can be assigned under this spec — the capacity
  /// bound for the per-thread ring buffers and the ceiling every observed
  /// staleness must respect (asserted by the tests).
  [[nodiscard]] std::size_t max_steps() const {
    return kind == DelayKind::kPerThread ? steps + jitter : steps;
  }
};

}  // namespace ndg
