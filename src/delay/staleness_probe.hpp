#pragma once
// Staleness probing — answers the streaming gate's new question: "how much
// staleness can this computation absorb before the Theorem 1/2 convergence
// degrades?" (docs/DELAY.md), plus the simulator cross-check the delayed
// engines are validated against.
//
// The theorems themselves are delay-OBLIVIOUS: they assume only that every
// update's result becomes visible after some finite number of steps, so a
// Theorem 1/2 verdict survives ANY bounded d and what degrades with
// staleness is convergence SPEED (iterations to fixed point), never the
// fixed point itself. probe_staleness measures that curve empirically and
// reports the largest sampled d that still reached the d=0 fixed point
// within tolerance; cross_validate_delay checks that the logical simulator
// (engine/simulator.hpp) and the hardware delayed engine agree on the
// eligibility-relevant outcome (convergence) for the same d.

#include <cmath>
#include <cstddef>
#include <vector>

#include "delay/delayed_engine.hpp"
#include "engine/simulator.hpp"

namespace ndg::delay {

/// One sampled point of the convergence-vs-d curve.
struct DelayProbePoint {
  std::size_t d = 0;
  bool converged = false;
  std::size_t iterations = 0;
  std::uint64_t updates = 0;
  std::uint64_t max_staleness = 0;
  /// Largest |value - d=0 value| across vertices (0.0 at d = 0).
  double max_abs_diff = 0.0;
};

struct DelayProbeResult {
  std::vector<DelayProbePoint> points;
  /// Largest sampled d whose run converged AND landed within tolerance of
  /// the d=0 fixed point, with every smaller sampled d also passing — the
  /// empirical staleness budget. 0 when even the baseline failed.
  std::size_t budget = 0;
  /// True when EVERY sampled d passed (the budget saturated the sweep —
  /// the expected outcome for Theorem 1/2 programs).
  bool saturated = false;
};

/// Sweeps d over `ds` (each run on a fresh program/engine built by
/// `make_run`, which returns that run's values()), comparing each delayed
/// fixed point against the d=0 reference. `make_run` signature:
///   std::vector<double>(const DelaySpec& spec, EngineResult& out)
template <typename MakeRun>
DelayProbeResult probe_staleness(MakeRun&& make_run,
                                 const std::vector<std::size_t>& ds,
                                 DelaySpec base_spec = {},
                                 double tolerance = 1e-6) {
  DelayProbeResult out;
  DelaySpec spec0 = base_spec;
  spec0.steps = 0;
  EngineResult ref_result;
  const std::vector<double> reference = make_run(spec0, ref_result);

  bool all_passed = ref_result.converged;
  for (const std::size_t d : ds) {
    DelaySpec spec = base_spec;
    spec.steps = d;
    DelayProbePoint p;
    p.d = d;
    EngineResult r;
    const std::vector<double> values = d == 0 ? reference : make_run(spec, r);
    if (d == 0) r = ref_result;
    p.converged = r.converged;
    p.iterations = r.iterations;
    p.updates = r.updates;
    p.max_staleness = r.max_staleness;
    for (std::size_t v = 0; v < values.size() && v < reference.size(); ++v) {
      const double diff = std::abs(values[v] - reference[v]);
      if (diff > p.max_abs_diff) p.max_abs_diff = diff;
    }
    const bool passed = p.converged && p.max_abs_diff <= tolerance;
    if (passed && all_passed) {
      out.budget = d;
    } else {
      all_passed = false;
    }
    out.points.push_back(p);
  }
  out.saturated = all_passed && !ds.empty();
  return out;
}

/// Verdict-parity record for one (program, d) pair: the simulator's logical
/// schedule and the hardware delayed engine must agree on whether the
/// algorithm converges under that staleness level.
struct DelayCrossCheck {
  bool sim_converged = false;
  bool engine_converged = false;
  std::size_t sim_iterations = 0;
  std::size_t engine_iterations = 0;
  [[nodiscard]] bool agree() const {
    return sim_converged == engine_converged;
  }
};

/// Runs the same program under the simulator (P procs, delay d) and under
/// the delayed NE engine (same thread count, fixed-d policy) on fresh state
/// each, and reports the convergence verdicts side by side.
template <VertexProgram Program, typename MakeProg>
DelayCrossCheck cross_validate_delay(const Graph& g, MakeProg&& make_prog,
                                     std::size_t d, std::size_t procs,
                                     const EngineOptions& engine_opts,
                                     std::uint64_t seed = 1) {
  DelayCrossCheck out;
  {
    Program prog = make_prog();
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions sopts;
    sopts.num_procs = procs;
    sopts.delay = d;
    sopts.seed = seed;
    sopts.max_iterations = engine_opts.max_iterations;
    const SimResult r = run_simulated(g, prog, edges, sopts);
    out.sim_converged = r.converged;
    out.sim_iterations = r.iterations;
  }
  {
    Program prog = make_prog();
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    EngineOptions opts = engine_opts;
    opts.delay.steps = d;
    opts.delay.kind = DelayKind::kFixed;
    opts.delay.seed = seed;
    const EngineResult r = run_delayed(g, prog, edges, opts);
    out.engine_converged = r.converged;
    out.engine_iterations = r.iterations;
  }
  return out;
}

}  // namespace ndg::delay
