#include "delay/delay_spec.hpp"

namespace ndg {

const char* to_string(DelayKind k) {
  switch (k) {
    case DelayKind::kFixed: return "fixed";
    case DelayKind::kUniform: return "uniform";
    case DelayKind::kPerThread: return "per-thread";
  }
  return "fixed";
}

bool parse_delay_kind(const std::string& s, DelayKind& out) {
  if (s == "fixed") {
    out = DelayKind::kFixed;
  } else if (s == "uniform") {
    out = DelayKind::kUniform;
  } else if (s == "per-thread" || s == "jitter") {
    out = DelayKind::kPerThread;
  } else {
    return false;
  }
  return true;
}

}  // namespace ndg
