#pragma once
// DelayedEngine — the NE and pure-async engines wrapped in per-thread delay
// queues (delay_buffer.hpp), so the paper's propagation delay d is a runtime
// knob instead of whatever the hardware happens to produce (docs/DELAY.md).
//
// Semantics. A write is parked in the WRITING thread's queue and committed
// through the access policy after a bounded number of that thread's update
// steps (one step per executed update; an idle thread ticks once per round
// so its writes cannot linger). The writer reads its own pending values
// (read-your-writes); everyone else sees the last COMMITTED value — exactly
// Definition 1's visibility asymmetry, measured in steps like SimOptions::
// delay. The task-generation rule fires at COMMIT time: an endpoint is
// (re)scheduled when the write becomes visible, which is what keeps the
// fixed point exact — no update can terminate the run while a value that
// would reactivate it is still in flight (the engines track in-flight writes
// in a shared counter and drain every queue before declaring convergence).
//
// Two deliberate simplifications, both documented in docs/DELAY.md:
//   * exchange/accumulate (push-mode RMW primitives) act as per-edge
//     propagation barriers: the thread's pending writes to that edge commit
//     first, then the RMW applies immediately. Delaying an RMW would detach
//     its read from its write and fabricate lost updates the undelayed
//     engines cannot exhibit.
//   * No hub splitting: chunk tokens interleave partial gathers with the
//     delay clock in ways that have no counterpart in the paper's model.
//
// d = 0 dispatches to the undelayed baselines — parity is by construction,
// and the tests assert it on results as well.

#include <atomic>

#include "atomics/access_policy.hpp"
#include "delay/delay_buffer.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/pure_async.hpp"

namespace ndg::delay {

/// Scheduling view over the barriered frontier (mirrors AsyncSweepView).
class FrontierSched {
 public:
  explicit FrontierSched(Frontier& f) : f_(&f) {}
  void schedule(VertexId v) { f_->schedule(v); }

 private:
  Frontier* f_;
};

/// Update context with the same verb surface as UpdateContext/AsyncContext,
/// but writes routed through the owning thread's ThreadDelayQueue. The
/// shared `in_flight` counter is what the engines' termination protocols
/// read: it counts buffered (not-yet-visible) writes across all threads.
template <EdgePod ED, typename Policy, typename Sched, typename GraphT = Graph>
class DelayedContext {
 public:
  using EdgeData = ED;

  DelayedContext(const GraphT& g, EdgeDataArray<ED>& edges, Policy policy,
                 Sched sched, ThreadDelayQueue& queue,
                 std::atomic<std::uint64_t>& in_flight)
      : g_(&g), edges_(&edges), policy_(policy), sched_(sched),
        queue_(&queue), in_flight_(&in_flight) {}

  void begin(VertexId v, std::size_t iteration) {
    v_ = v;
    iter_ = static_cast<std::uint32_t>(iteration);
    if constexpr (requires(Policy& p) { p.begin_update(v); }) {
      policy_.begin_update(v);
    }
  }

  [[nodiscard]] VertexId vertex() const { return v_; }
  [[nodiscard]] std::size_t iteration() const { return iter_; }
  [[nodiscard]] const GraphT& graph() const { return *g_; }

  [[nodiscard]] std::span<const InEdge> in_edges() const {
    return g_->in_edges(v_);
  }
  [[nodiscard]] std::span<const VertexId> out_neighbors() const {
    return g_->out_neighbors(v_);
  }
  [[nodiscard]] EdgeId out_edge_id(std::size_t k) const {
    return g_->out_edge_id(v_, k);
  }

  /// Read-your-writes: the caller's own newest buffered value wins; remote
  /// writes are visible only once committed.
  [[nodiscard]] ED read(EdgeId e) {
    std::uint64_t slot = 0;
    if (queue_->pending_value(e, slot)) return ndg::detail::from_slot<ED>(slot);
    return policy_.read(*edges_, e);
  }

  /// Cache hint for an upcoming read(e). Address-only slot use, no datum
  /// observed.  ndg-lint: allow(raw-slots)
  void prefetch(EdgeId e) const { perf::prefetch_read(edges_->slots() + e); }

  void write(EdgeId e, VertexId other_endpoint, ED value) {
    in_flight_->fetch_add(1, std::memory_order_acq_rel);
    queue_->push(e, ndg::detail::to_slot(value), other_endpoint, commit());
  }

  void write_silent(EdgeId e, ED value) {
    in_flight_->fetch_add(1, std::memory_order_acq_rel);
    queue_->push(e, ndg::detail::to_slot(value), kInvalidVertex, commit());
  }

  /// RMW = per-edge propagation barrier (header comment): own pending writes
  /// to e commit first, then the exchange applies undelayed.
  [[nodiscard]] ED exchange(EdgeId e, ED value) {
    queue_->flush_edge(e, commit());
    return policy_.exchange(*edges_, e, value);
  }

  template <typename Fn>
  void accumulate(EdgeId e, VertexId other_endpoint, Fn fn) {
    queue_->flush_edge(e, commit());
    policy_.accumulate(*edges_, e, fn);
    sched_.schedule(other_endpoint);
  }

  void schedule(VertexId u) { sched_.schedule(u); }

  /// The commit callable the engine loops hand to queue.advance/flush_all:
  /// value first (policy write), then the task rule (schedule), then the
  /// in-flight decrement — so a thread observing in_flight == 0 after seeing
  /// an idle scheduler cannot have missed a handoff in progress.
  [[nodiscard]] auto commit() {
    return [this](EdgeId e, std::uint64_t slot, VertexId endpoint) {
      policy_.write(*edges_, e, ndg::detail::from_slot<ED>(slot));
      if (endpoint != kInvalidVertex) sched_.schedule(endpoint);
      in_flight_->fetch_sub(1, std::memory_order_acq_rel);
    };
  }

 private:
  const GraphT* g_;
  EdgeDataArray<ED>* edges_;
  Policy policy_;
  Sched sched_;
  ThreadDelayQueue* queue_;
  std::atomic<std::uint64_t>* in_flight_;
  VertexId v_ = kInvalidVertex;
  std::uint32_t iter_ = 0;
};

/// Barriered (NE-shaped) delayed run: the run_nondet_impl loop with a delay
/// queue per thread and a termination protocol that also drains in-flight
/// writes. Rounds where the frontier is empty but writes are still buffered
/// appear as zero-size iterations in frontier_sizes — they are rounds the
/// delay genuinely cost.
template <typename GraphT, VertexProgram Program, typename Policy, Worklist WL>
EngineResult run_delayed_ne_impl(const GraphT& g, Program& prog,
                                 EdgeDataArray<typename Program::EdgeData>& edges,
                                 Policy policy, const EngineOptions& opts,
                                 std::vector<VertexId> seeds) {
  Timer timer;
  Frontier frontier(g.num_vertices(), opts.frontier_policy,
                    opts.frontier_dense_divisor);
  frontier.seed(std::move(seeds));

  const std::size_t nt = std::max<std::size_t>(1, opts.num_threads);
  SpinBarrier barrier(nt);
  WL worklist = ndg::detail::make_worklist<WL>(nt, opts);
  std::vector<std::uint64_t> per_updates(nt, 0);
  std::vector<std::uint64_t> per_work(nt, 0);
  std::vector<DelayTelemetry> per_delay(nt);
  std::atomic<std::uint64_t> in_flight{0};
  std::size_t iterations = 0;  // written by thread 0 between barriers only
  bool stop = false;           // likewise
  std::vector<std::uint64_t> frontier_sizes;
  std::vector<std::uint8_t> frontier_dense;

  run_team(nt, [&](std::size_t tid) {
    bool sense = false;
    ThreadDelayQueue queue(opts.delay, tid);
    DelayedContext<typename Program::EdgeData, Policy, FrontierSched, GraphT>
        ctx(g, edges, policy, FrontierSched(frontier), queue, in_flight);
    const auto commit = ctx.commit();
    std::uint64_t local_updates = 0;
    std::uint64_t local_work = 0;
    for (std::size_t iter = 0;; ++iter) {
      // All threads observe the same stop/frontier state here: thread 0
      // mutated it strictly between the two barriers of the previous round.
      if (stop || iter >= opts.max_iterations) break;

      // Drain-vs-normal is agreed across threads (frontier state is shared
      // and quiescent here), so the barrier pattern below stays consistent.
      const bool drain_round = frontier.empty();
      if (drain_round) {
        // No scheduled work anywhere, but writes are still in flight: every
        // thread force-commits its own queue. The commits re-schedule the
        // written endpoints, so the next round has a frontier again.
        queue.flush_all(commit);
      } else {
        const auto feed = [&](VertexId v) {
          worklist.push(tid, v, scheduling_priority(prog, v));
        };
        if (frontier.dense()) {
          const auto [wb, we] = static_block(frontier.num_words(), nt, tid);
          frontier.for_each_in_words(
              wb, we, [&](std::size_t v) { feed(static_cast<VertexId>(v)); });
        } else {
          const auto& cur = frontier.current();
          const auto [begin, end] = static_block(cur.size(), nt, tid);
          for (std::size_t i = begin; i < end; ++i) feed(cur[i]);
        }
        worklist.publish(tid);
        if constexpr (WL::kShared) {
          barrier.arrive_and_wait(sense);
        }

        VertexId v;
        bool did_work = false;
        while (worklist.try_pop(tid, v)) {
          ctx.begin(v, iter);
          prog.update(v, ctx);
          ++local_updates;
          local_work += g.in_edges(v).size() + g.out_neighbors(v).size();
          did_work = true;
          // One step per own update: commits whatever came due.
          queue.advance(commit);
        }
        // A thread with no updates this round still ticks once, so an idle
        // thread's buffered writes age by rounds instead of lingering.
        if (!did_work && !queue.empty()) queue.advance(commit);
      }

      barrier.arrive_and_wait(sense);
      if (tid == 0) {
        frontier_sizes.push_back(frontier.size());
        frontier_dense.push_back(frontier.dense() ? 1 : 0);
        frontier.advance();
        iterations = iter + 1;
        // Every thread is parked at the barrier pair: no commit is in
        // flight, so this read of the counter is exact.
        stop = frontier.empty() &&
               in_flight.load(std::memory_order_acquire) == 0;
      }
      barrier.arrive_and_wait(sense);
    }
    per_updates[tid] = local_updates;  // exclusive slot; read after join
    per_work[tid] = local_work;
    per_delay[tid] = queue.telemetry();
  });

  EngineResult result;
  result.iterations = iterations;
  for (const std::uint64_t u : per_updates) result.updates += u;
  result.converged =
      frontier.empty() && in_flight.load(std::memory_order_acquire) == 0;
  result.seconds = timer.seconds();
  result.frontier_sizes = std::move(frontier_sizes);
  result.frontier_dense = std::move(frontier_dense);
  result.per_thread_updates = std::move(per_updates);
  result.per_thread_work = std::move(per_work);
  for (const DelayTelemetry& t : per_delay) merge_telemetry(result, t);
  const WorklistStats wl_stats = worklist.stats();
  result.steals = wl_stats.steals;
  result.steal_attempts = wl_stats.steal_attempts;
  return result;
}

/// Barrier-free (pure-async sweep) delayed run. Quiescence needs BOTH the
/// active set drained and every delay queue empty; a thread whose sweep
/// claims nothing force-flushes its own queue, so buffered work always
/// re-enters the active set in bounded time. The scheduler knob is ignored:
/// the sweep shape is the one whose step clock maps cleanly onto per-thread
/// delay queues (docs/DELAY.md).
template <typename GraphT, VertexProgram Program, typename Policy>
EngineResult run_delayed_async_impl(
    const GraphT& g, Program& prog,
    EdgeDataArray<typename Program::EdgeData>& edges, Policy policy,
    const EngineOptions& opts, const std::vector<VertexId>& seeds) {
  Timer timer;
  ndg::detail::AsyncActiveSet active(g.num_vertices());
  for (const VertexId v : seeds) active.schedule(v);

  const std::size_t nt = std::max<std::size_t>(1, opts.num_threads);
  std::vector<ndg::detail::AsyncWorkerTotals> totals(nt);
  std::vector<DelayTelemetry> per_delay(nt);
  std::atomic<std::uint64_t> in_flight{0};
  const std::uint64_t update_cap =
      static_cast<std::uint64_t>(opts.max_iterations) *
      std::max<std::uint64_t>(1, g.num_vertices());
  std::atomic<std::uint64_t> global_updates{0};
  std::atomic<bool> capped{false};

  run_team(nt, [&](std::size_t tid) {
    ThreadDelayQueue queue(opts.delay, tid);
    DelayedContext<typename Program::EdgeData, Policy,
                   ndg::detail::AsyncSweepView, GraphT>
        ctx(g, edges, policy, ndg::detail::AsyncSweepView(active), queue,
            in_flight);
    const auto commit = ctx.commit();
    ndg::detail::AsyncWorkerTotals& t = totals[tid];
    const VertexId n = g.num_vertices();
    const VertexId start =
        static_cast<VertexId>(static_block(n, nt, tid).begin);

    // Exit only at global quiescence of BOTH trackers (read in this order:
    // the commit callable schedules before decrementing, so a stale pair
    // cannot hide a handoff — see DelayedContext::commit).
    while (!(active.quiescent() &&
             in_flight.load(std::memory_order_acquire) == 0) &&
           !capped.load(std::memory_order_relaxed)) {
      bool did_work = false;
      for (VertexId i = 0; i < n; ++i) {
        const VertexId v = static_cast<VertexId>((start + i) % n);
        if (!active.maybe_active(v)) continue;
        if (!active.claim(v)) continue;
        if (!active.begin_update(v)) {
          active.schedule(v);
          active.finished();
          continue;
        }
        ctx.begin(v, t.sweeps);
        prog.update(v, ctx);
        active.end_update(v);
        active.finished();
        ++t.updates;
        t.work += g.in_edges(v).size() + g.out_neighbors(v).size();
        did_work = true;
        queue.advance(commit);  // one step per own update
        if (t.updates % 4096 == 0 &&
            global_updates.fetch_add(4096, std::memory_order_relaxed) + 4096 >
                update_cap) {
          capped.store(true, std::memory_order_relaxed);
          break;
        }
      }
      if (!did_work) queue.flush_all(commit);
      ++t.sweeps;
    }
    // A capped run must not leak buffered writes into the telemetry's
    // in-flight count forever; drain so the counter reflects reality.
    queue.flush_all(commit);
    per_delay[tid] = queue.telemetry();
  });

  EngineResult result;
  result.converged = active.quiescent() && !capped.load() &&
                     in_flight.load(std::memory_order_acquire) == 0;
  result.seconds = timer.seconds();
  std::uint64_t sweeps = 0;
  for (const ndg::detail::AsyncWorkerTotals& t : totals) {
    result.per_thread_updates.push_back(t.updates);
    result.per_thread_work.push_back(t.work);
    result.updates += t.updates;
    sweeps += t.sweeps;
  }
  result.iterations = sweeps / nt;  // mean sweeps per thread
  for (const DelayTelemetry& t : per_delay) merge_telemetry(result, t);
  return result;
}

template <typename GraphT, VertexProgram Program, typename Policy>
EngineResult run_delayed_ne_sched(const GraphT& g, Program& prog,
                                  EdgeDataArray<typename Program::EdgeData>& edges,
                                  Policy policy, const EngineOptions& opts,
                                  std::vector<VertexId> seeds) {
  return ndg::detail::dispatch_scheduler(opts.scheduler, [&](auto wl_tag) {
    using WL = typename decltype(wl_tag)::type;
    return run_delayed_ne_impl<GraphT, Program, Policy, WL>(
        g, prog, edges, policy, opts, std::move(seeds));
  });
}

template <bool kAsync, typename GraphT, VertexProgram Program>
EngineResult run_delayed_mode(const GraphT& g, Program& prog,
                              EdgeDataArray<typename Program::EdgeData>& edges,
                              const EngineOptions& opts,
                              std::vector<VertexId> seeds) {
  const auto with_policy = [&](auto policy) {
    if constexpr (kAsync) {
      return run_delayed_async_impl(g, prog, edges, policy, opts, seeds);
    } else {
      return run_delayed_ne_sched(g, prog, edges, policy, opts,
                                  std::move(seeds));
    }
  };
  switch (opts.mode) {
    case AtomicityMode::kLocked: {
      EdgeLockTable locks(edges.size());
      return with_policy(LockedAccess{&locks});
    }
    case AtomicityMode::kAligned: return with_policy(AlignedAccess{});
    case AtomicityMode::kRelaxed: return with_policy(RelaxedAtomicAccess{});
    case AtomicityMode::kSeqCst: return with_policy(SeqCstAccess{});
  }
  return {};
}

/// Warm-start delayed NE run (counterpart of run_nondeterministic_from).
/// d = 0 IS run_nondeterministic_from.
template <typename GraphT, VertexProgram Program>
EngineResult run_delayed_from(const GraphT& g, Program& prog,
                              EdgeDataArray<typename Program::EdgeData>& edges,
                              std::vector<VertexId> seeds,
                              const EngineOptions& opts) {
  if (!opts.delay.enabled()) {
    return run_nondeterministic_from(g, prog, edges, std::move(seeds), opts);
  }
  return run_delayed_mode<false>(g, prog, edges, opts, std::move(seeds));
}

/// Full delayed NE run from the program's own initial frontier.
template <VertexProgram Program>
EngineResult run_delayed(const Graph& g, Program& prog,
                         EdgeDataArray<typename Program::EdgeData>& edges,
                         const EngineOptions& opts) {
  if (!opts.delay.enabled()) {
    return run_nondeterministic(g, prog, edges, opts);
  }
  return run_delayed_mode<false>(g, prog, edges, opts,
                                 prog.initial_frontier(g));
}

/// Warm-start delayed pure-async run (counterpart of run_pure_async_from).
template <typename GraphT, VertexProgram Program>
EngineResult run_delayed_async_from(
    const GraphT& g, Program& prog,
    EdgeDataArray<typename Program::EdgeData>& edges,
    std::vector<VertexId> seeds, const EngineOptions& opts) {
  if (!opts.delay.enabled()) {
    return run_pure_async_from(g, prog, edges, std::move(seeds), opts);
  }
  return run_delayed_mode<true>(g, prog, edges, opts, std::move(seeds));
}

/// Full delayed pure-async run from the program's own initial frontier.
template <VertexProgram Program>
EngineResult run_delayed_async(const Graph& g, Program& prog,
                               EdgeDataArray<typename Program::EdgeData>& edges,
                               const EngineOptions& opts) {
  if (!opts.delay.enabled()) {
    return run_pure_async(g, prog, edges, opts);
  }
  return run_delayed_mode<true>(g, prog, edges, opts,
                                prog.initial_frontier(g));
}

}  // namespace ndg::delay
