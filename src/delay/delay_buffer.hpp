#pragma once
// Per-thread delay queues — the mechanism behind the delayed engines
// (docs/DELAY.md), after Blanco et al.'s delayed asynchronous model
// (PAPERS.md, arXiv:2110.01409).
//
// Every write a delayed engine makes is parked in the WRITING thread's own
// ThreadDelayQueue for a bounded number of that thread's update steps (the
// hold drawn per DelaySpec), then committed through the engine's access
// policy — at which point it becomes visible to every thread and the written
// edge's other endpoint is (re)scheduled. Three invariants make this a
// faithful realization of the paper's propagation delay d:
//
//   * Read-your-writes: a thread's read of edge e returns its own newest
//     pending value for e (pending_value), so the WRITER observes program
//     order while REMOTE visibility is what lags — exactly Definition 1's
//     asymmetry.
//   * Per-edge write order: a later write to e never commits before an
//     earlier one. Holds are clamped so each entry's due step is >= the due
//     step of every pending entry for the same edge (the bump in push()),
//     which keeps same-location commit order equal to program order even
//     under per-write random holds.
//   * Bounded staleness: every commit happens within DelaySpec::max_steps()
//     of its push, measured on the owning thread's step clock. Forced
//     end-of-run flushes (flush_all) can only commit EARLY.
//
// The queue is strictly thread-local — no atomics, no sharing; commits go
// through the engine's access policy, which is where cross-thread visibility
// (and TSan cleanliness under the atomic policies) comes from.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "delay/delay_spec.hpp"
#include "engine/options.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ndg::delay {

/// Per-thread commit telemetry, merged into EngineResult after team join.
struct DelayTelemetry {
  std::uint64_t delayed_writes = 0;
  std::uint64_t max_staleness = 0;
  std::uint64_t staleness_total = 0;
  /// hist[s] = commits that sat exactly s steps; sized max_steps()+1.
  std::vector<std::uint64_t> hist;
};

/// Folds one thread's telemetry into the run result (call after join).
inline void merge_telemetry(EngineResult& r, const DelayTelemetry& t) {
  r.delayed_writes += t.delayed_writes;
  r.staleness_total += t.staleness_total;
  if (t.max_staleness > r.max_staleness) r.max_staleness = t.max_staleness;
  if (r.staleness_hist.size() < t.hist.size()) {
    r.staleness_hist.resize(t.hist.size(), 0);
  }
  for (std::size_t s = 0; s < t.hist.size(); ++s) {
    r.staleness_hist[s] += t.hist[s];
  }
}

/// One thread's bounded delay buffer. `Commit` callables receive
/// (EdgeId edge, std::uint64_t slot_value, VertexId endpoint) — endpoint is
/// kInvalidVertex for silent writes (no rescheduling on commit).
class ThreadDelayQueue {
 public:
  ThreadDelayQueue(const DelaySpec& spec, std::size_t tid)
      : spec_(spec),
        capacity_(spec.max_steps() + 1),
        buckets_(capacity_),
        rng_(spec.seed * 0x9E3779B97F4A7C15ULL + tid + 1) {
    NDG_ASSERT(spec.enabled());
    if (spec.kind == DelayKind::kPerThread) {
      const std::size_t lo =
          spec.steps > spec.jitter ? spec.steps - spec.jitter : 0;
      const std::size_t hi = spec.steps + spec.jitter;
      thread_hold_ = lo + rng_.next_below(hi - lo + 1);
    }
    telemetry_.hist.assign(capacity_, 0);
  }

  /// Parks (or, for a zero hold with nothing pending on e, immediately
  /// commits) one write. Commit may fire inside this call.
  template <typename Commit>
  void push(EdgeId e, std::uint64_t slot, VertexId endpoint, Commit&& commit) {
    std::uint64_t due = step_ + draw_hold();
    auto [it, fresh] = pending_.try_emplace(e);
    if (!fresh && it->second.last_due > due) due = it->second.last_due;
    if (due == step_) {
      // Zero effective hold and no earlier pending write to order behind:
      // visible immediately, like an undelayed engine's write.
      if (fresh) pending_.erase(it);
      record(0);
      commit(e, slot, endpoint);
      return;
    }
    it->second.latest_slot = slot;
    ++it->second.count;
    it->second.last_due = due;
    NDG_ASSERT(due - step_ < capacity_);
    buckets_[due % capacity_].push_back(Entry{e, slot, endpoint, step_});
    ++size_;
  }

  /// The calling thread's own newest pending value for e, if any — the
  /// read-your-writes path.
  [[nodiscard]] bool pending_value(EdgeId e, std::uint64_t& out) const {
    const auto it = pending_.find(e);
    if (it == pending_.end()) return false;
    out = it->second.latest_slot;
    return true;
  }

  /// Advances this thread's step clock by one and commits everything due.
  template <typename Commit>
  void advance(Commit&& commit) {
    ++step_;
    auto& bucket = buckets_[step_ % capacity_];
    // Every entry here is due exactly now: holds never exceed capacity_ - 1,
    // so the ring cannot wrap an entry past its own due step.
    for (const Entry& entry : bucket) commit_entry(entry, commit);
    size_ -= bucket.size();
    bucket.clear();
  }

  /// Commits every pending entry, oldest due first (used when the engine
  /// runs out of scheduled work: staleness may come in UNDER the drawn hold,
  /// never over). The step clock does not move.
  template <typename Commit>
  void flush_all(Commit&& commit) {
    for (std::size_t k = 1; k <= capacity_ && size_ > 0; ++k) {
      auto& bucket = buckets_[(step_ + k) % capacity_];
      for (const Entry& entry : bucket) commit_entry(entry, commit);
      size_ -= bucket.size();
      bucket.clear();
    }
    NDG_ASSERT(size_ == 0);
  }

  /// Commits every pending entry for ONE edge, in push order — the
  /// propagation barrier exchange/accumulate need before their atomic RMW
  /// can observe an up-to-date slot.
  template <typename Commit>
  void flush_edge(EdgeId e, Commit&& commit) {
    if (pending_.find(e) == pending_.end()) return;
    for (std::size_t k = 1; k <= capacity_ && size_ > 0; ++k) {
      auto& bucket = buckets_[(step_ + k) % capacity_];
      std::size_t kept = 0;
      for (Entry& entry : bucket) {
        if (entry.edge == e) {
          commit_entry(entry, commit);
          --size_;
        } else {
          bucket[kept++] = entry;
        }
      }
      bucket.resize(kept);
      if (pending_.find(e) == pending_.end()) break;
    }
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::uint64_t step() const { return step_; }
  [[nodiscard]] const DelayTelemetry& telemetry() const { return telemetry_; }

 private:
  struct Entry {
    EdgeId edge;
    std::uint64_t slot;
    VertexId endpoint;
    std::uint64_t push_step;
  };
  struct PendingInfo {
    std::uint64_t latest_slot = 0;  // newest pending value (reads)
    std::uint64_t last_due = 0;     // order floor for the next push
    std::uint32_t count = 0;        // pending entries for this edge
  };

  [[nodiscard]] std::size_t draw_hold() {
    switch (spec_.kind) {
      case DelayKind::kFixed: return spec_.steps;
      case DelayKind::kUniform: return rng_.next_below(spec_.steps + 1);
      case DelayKind::kPerThread: return thread_hold_;
    }
    return spec_.steps;
  }

  void record(std::uint64_t staleness) {
    ++telemetry_.delayed_writes;
    telemetry_.staleness_total += staleness;
    if (staleness > telemetry_.max_staleness) {
      telemetry_.max_staleness = staleness;
    }
    ++telemetry_.hist[staleness];
  }

  template <typename Commit>
  void commit_entry(const Entry& entry, Commit& commit) {
    record(step_ - entry.push_step);
    const auto it = pending_.find(entry.edge);
    NDG_ASSERT(it != pending_.end());
    if (--it->second.count == 0) pending_.erase(it);
    commit(entry.edge, entry.slot, entry.endpoint);
  }

  DelaySpec spec_;
  std::size_t capacity_;
  std::vector<std::vector<Entry>> buckets_;  // indexed by due % capacity_
  std::unordered_map<EdgeId, PendingInfo> pending_;
  Xoshiro256 rng_;
  std::size_t thread_hold_ = 0;  // kPerThread's constant draw
  std::uint64_t step_ = 0;
  std::size_t size_ = 0;
  DelayTelemetry telemetry_;
};

}  // namespace ndg::delay
