#pragma once
// NumaArena — page-granular allocator behind the library's big flat arrays
// (graph topology, edge-data slots, hub-gather partials).
//
// Graph analytics is bandwidth-bound: the gather loop streams the CSC array
// and issues a dependent random read into the edge-data array per in-edge, so
// TLB reach and page placement dominate once the graph exceeds the LLC. The
// arena maps each block with mmap and then applies the requested MemSpec:
//
//   kHugepage   — madvise(MADV_HUGEPAGE): transparent huge pages collapse the
//                 4 KiB mappings into 2 MiB ones, cutting dTLB misses on the
//                 random edge-data reads.
//   kInterleave — mbind(MPOL_INTERLEAVE) across the online NUMA nodes, so all
//                 sockets' memory controllers serve the scan instead of the
//                 first-touch node's.
//   kBind       — mbind(MPOL_BIND) to one node, for single-socket pinned runs.
//
// Every placement step is best-effort: on kernels without THP/NUMA support
// (or non-Linux hosts) the calls fail silently and the block behaves like
// kDefault. kDefault itself uses operator new so tools that allocate many
// small graphs don't pay mmap round trips. No libnuma dependency — the two
// syscalls are issued directly.

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

#include "mem/mem_policy.hpp"
#include "util/assert.hpp"

namespace ndg::mem {

class NumaArena {
 public:
  /// One allocation, as returned by NumaArena::alloc. `mapped` records which
  /// deallocation path to take (munmap vs operator delete).
  struct Block {
    void* ptr = nullptr;
    std::size_t bytes = 0;
    bool mapped = false;
  };

  /// Allocates `bytes` (64-byte aligned, uninitialized for kDefault, zeroed
  /// for mapped policies) placed per `spec`. bytes == 0 returns a null block.
  [[nodiscard]] static Block alloc(std::size_t bytes, const MemSpec& spec);

  /// Releases a block returned by alloc (null blocks are fine).
  static void free(const Block& block);

  /// True when the last mmap-based alloc got its requested mbind placement —
  /// telemetry for the bench harness; never required for correctness.
  [[nodiscard]] static bool last_placement_applied();
};

/// Typed RAII view over one arena block: the adoption point for Graph and
/// EdgeDataArray. Elements are value-initialized; T must be trivially
/// copyable so copies are memcpy and destruction is a plain unmap/delete.
template <typename T>
class Buffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "Buffer holds flat POD arrays only");

 public:
  Buffer() = default;

  explicit Buffer(std::size_t n, const MemSpec& spec = {})
      : size_(n), spec_(spec), block_(NumaArena::alloc(n * sizeof(T), spec)) {
    if (!block_.mapped && n > 0) {
      // operator-new memory is uninitialized; mapped pages arrive zeroed.
      std::memset(block_.ptr, 0, n * sizeof(T));
    }
  }

  Buffer(const Buffer& other) : Buffer(other.size_, other.spec_) {
    if (size_ > 0) std::memcpy(block_.ptr, other.block_.ptr, size_ * sizeof(T));
  }

  Buffer& operator=(const Buffer& other) {
    if (this != &other) *this = Buffer(other);
    return *this;
  }

  Buffer(Buffer&& other) noexcept { swap(other); }

  Buffer& operator=(Buffer&& other) noexcept {
    swap(other);
    return *this;
  }

  ~Buffer() { NumaArena::free(block_); }

  /// Returns a buffer of `n` elements with the same placement spec: the first
  /// min(n, size) elements are copied, any tail is zeroed. This is the growth
  /// primitive behind the dynamic-graph overflow segments and edge-data
  /// regrowth (src/dyn/) — one allocation, one memcpy, no element-wise work.
  [[nodiscard]] Buffer resized(std::size_t n) const {
    Buffer out(n, spec_);
    const std::size_t keep = std::min(n, size_);
    if (keep > 0) std::memcpy(out.block_.ptr, block_.ptr, keep * sizeof(T));
    return out;
  }

  void swap(Buffer& other) noexcept {
    std::swap(size_, other.size_);
    std::swap(spec_, other.spec_);
    std::swap(block_, other.block_);
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const MemSpec& spec() const { return spec_; }

  [[nodiscard]] T* data() { return static_cast<T*>(block_.ptr); }
  [[nodiscard]] const T* data() const {
    return static_cast<const T*>(block_.ptr);
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    NDG_ASSERT(i < size_);
    return data()[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    NDG_ASSERT(i < size_);
    return data()[i];
  }

  [[nodiscard]] T* begin() { return data(); }
  [[nodiscard]] T* end() { return data() + size_; }
  [[nodiscard]] const T* begin() const { return data(); }
  [[nodiscard]] const T* end() const { return data() + size_; }

 private:
  std::size_t size_ = 0;
  MemSpec spec_{};
  NumaArena::Block block_{};
};

}  // namespace ndg::mem
