#pragma once
// IterArena — a per-thread bump allocator for operator-local state that lives
// exactly one engine round. The speculative engine (engine/speculative.hpp)
// allocates one CautiousProgram::LocalState per planned vertex out of its
// thread's arena during the plan phase, reads it back during commit, and then
// reset()s the whole arena at the next round's start: no per-object frees, no
// destructor walks (allocation is restricted to trivially-destructible types),
// and the chunk list is retained across rounds so steady-state rounds allocate
// nothing from the OS.
//
// Chunks come from mem::NumaArena so arena-backed state gets the same
// placement controls (hugepages / NUMA interleave) as the big flat arrays.
// Not thread-safe by design: one IterArena per worker thread.

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "mem/mem_policy.hpp"
#include "mem/numa_arena.hpp"
#include "util/assert.hpp"

namespace ndg::mem {

class IterArena {
 public:
  explicit IterArena(std::size_t chunk_bytes = kDefaultChunkBytes,
                     const MemSpec& spec = {})
      : chunk_bytes_(chunk_bytes), spec_(spec) {
    NDG_ASSERT(chunk_bytes_ > 0);
  }

  IterArena(const IterArena&) = delete;
  IterArena& operator=(const IterArena&) = delete;

  IterArena(IterArena&& other) noexcept { swap(other); }
  IterArena& operator=(IterArena&& other) noexcept {
    swap(other);
    return *this;
  }

  ~IterArena() {
    for (const Chunk& c : chunks_) NumaArena::free(c.block);
  }

  /// Drops every allocation but keeps the chunks mapped — call at the start
  /// of each round. O(#chunks), no OS traffic.
  void reset() {
    for (Chunk& c : chunks_) c.used = 0;
    active_ = 0;
    in_use_ = 0;
  }

  /// Uninitialized storage for one T. T must be trivially destructible:
  /// reset() never runs destructors.
  template <typename T>
  [[nodiscard]] T* alloc() {
    static_assert(std::is_trivially_destructible_v<T>,
                  "IterArena::reset() does not run destructors");
    return static_cast<T*>(alloc_bytes(sizeof(T), alignof(T)));
  }

  /// Raw aligned bump allocation. Requests larger than the chunk size get a
  /// dedicated chunk of exactly the rounded request.
  [[nodiscard]] void* alloc_bytes(std::size_t bytes, std::size_t align) {
    NDG_ASSERT(align > 0 && (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    while (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      const std::size_t base =
          (c.used + align - 1) & ~(align - std::size_t{1});
      if (base + bytes <= c.block.bytes) {
        c.used = base + bytes;
        in_use_ += bytes;
        return static_cast<std::byte*>(c.block.ptr) + base;
      }
      ++active_;
    }
    // NumaArena blocks are 64-byte aligned, covering any pod alignment.
    const std::size_t want = bytes > chunk_bytes_ ? bytes : chunk_bytes_;
    chunks_.push_back(Chunk{NumaArena::alloc(want, spec_), bytes});
    active_ = chunks_.size() - 1;
    in_use_ += bytes;
    return chunks_.back().block.ptr;
  }

  /// Live bytes since the last reset() (telemetry only).
  [[nodiscard]] std::size_t bytes_in_use() const { return in_use_; }
  /// Bytes mapped across all chunks (retained across resets).
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.block.bytes;
    return total;
  }

  void swap(IterArena& other) noexcept {
    std::swap(chunk_bytes_, other.chunk_bytes_);
    std::swap(spec_, other.spec_);
    chunks_.swap(other.chunks_);
    std::swap(active_, other.active_);
    std::swap(in_use_, other.in_use_);
  }

  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 16;

 private:
  struct Chunk {
    NumaArena::Block block;
    std::size_t used = 0;
  };

  std::size_t chunk_bytes_ = kDefaultChunkBytes;
  MemSpec spec_{};
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  // first chunk worth trying for the next alloc
  std::size_t in_use_ = 0;
};

}  // namespace ndg::mem
