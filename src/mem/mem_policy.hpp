#pragma once
// Runtime selector for the memory-placement layer (src/mem/, docs/PERF.md).
// Kept in its own tiny header so EngineOptions and GraphBuildOptions can name
// the policy without pulling in the allocator implementation — the same
// pattern as sched/scheduler_kind.hpp.

#include <optional>
#include <string>

namespace ndg {

/// Where and how the big flat arrays (CSR/CSC topology, edge-data slots,
/// hub-gather partials) are placed in physical memory.
enum class MemPolicy {
  kDefault,     // operator new: whatever the libc allocator gives us
  kHugepage,    // private mmap + madvise(MADV_HUGEPAGE) when available
  kInterleave,  // mmap + mbind(MPOL_INTERLEAVE) across all online NUMA nodes
  kBind,        // mmap + mbind(MPOL_BIND) to one node (MemSpec::node)
};

/// A full placement request: policy plus the target node for kBind.
struct MemSpec {
  MemPolicy policy = MemPolicy::kDefault;
  int node = 0;  // only meaningful for MemPolicy::kBind
};

[[nodiscard]] const char* to_string(MemPolicy policy);

/// Parses the CLI spelling ("default" | "huge" | "interleave" | "bind:<n>").
[[nodiscard]] std::optional<MemSpec> parse_mem_policy(const std::string& name);

}  // namespace ndg
