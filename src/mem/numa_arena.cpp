#include "mem/numa_arena.hpp"

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ndg::mem {

namespace {

// mbind policy numbers from <linux/mempolicy.h>, restated locally so the
// build needs no NUMA headers (the kernel ABI is stable).
constexpr int kMpolBind = 2;
constexpr int kMpolInterleave = 3;

std::atomic<bool> g_last_placement_applied{true};

#if defined(__linux__)

/// Bitmask of online NUMA nodes (probed once via sysfs; node 0 always set so
/// single-node hosts interleave over themselves, i.e. behave like default).
unsigned long online_node_mask() {
  static const unsigned long mask = [] {
    unsigned long m = 1UL;
    for (int node = 1; node < 64; ++node) {
      const std::string path =
          "/sys/devices/system/node/node" + std::to_string(node);
      if (::access(path.c_str(), F_OK) != 0) break;
      m |= 1UL << node;
    }
    return m;
  }();
  return mask;
}

/// Direct mbind(2); returns false when the kernel lacks NUMA support or the
/// mask is not satisfiable — callers treat that as "placement skipped".
bool try_mbind(void* ptr, std::size_t bytes, int mode, unsigned long mask) {
#if defined(SYS_mbind)
  // maxnode counts bits and the kernel wants one past the highest; 65 covers
  // the 64-bit mask plus the customary +1.
  return ::syscall(SYS_mbind, ptr, bytes, mode, &mask, 65UL, 0UL) == 0;
#else
  (void)ptr, (void)bytes, (void)mode, (void)mask;
  return false;
#endif
}

#endif  // __linux__

}  // namespace

NumaArena::Block NumaArena::alloc(std::size_t bytes, const MemSpec& spec) {
  Block block;
  if (bytes == 0) return block;
  block.bytes = bytes;

#if defined(__linux__)
  if (spec.policy != MemPolicy::kDefault) {
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      block.ptr = p;
      block.mapped = true;
      bool applied = true;
#if defined(MADV_HUGEPAGE)
      if (spec.policy == MemPolicy::kHugepage) {
        applied = ::madvise(p, bytes, MADV_HUGEPAGE) == 0;
      }
#endif
      if (spec.policy == MemPolicy::kInterleave) {
        applied = try_mbind(p, bytes, kMpolInterleave, online_node_mask());
      } else if (spec.policy == MemPolicy::kBind) {
        applied = try_mbind(p, bytes, kMpolBind, 1UL << (spec.node & 63));
      }
      g_last_placement_applied.store(applied, std::memory_order_relaxed);
      return block;
    }
    // mmap refused (rlimit, exotic host): fall through to operator new.
  }
#endif  // __linux__

  block.ptr = ::operator new(bytes, std::align_val_t{64});
  block.mapped = false;
  g_last_placement_applied.store(spec.policy == MemPolicy::kDefault,
                                 std::memory_order_relaxed);
  return block;
}

void NumaArena::free(const Block& block) {
  if (block.ptr == nullptr) return;
#if defined(__linux__)
  if (block.mapped) {
    ::munmap(block.ptr, block.bytes);
    return;
  }
#endif
  ::operator delete(block.ptr, std::align_val_t{64});
}

bool NumaArena::last_placement_applied() {
  return g_last_placement_applied.load(std::memory_order_relaxed);
}

}  // namespace ndg::mem

namespace ndg {

const char* to_string(MemPolicy policy) {
  switch (policy) {
    case MemPolicy::kDefault:
      return "default";
    case MemPolicy::kHugepage:
      return "huge";
    case MemPolicy::kInterleave:
      return "interleave";
    case MemPolicy::kBind:
      return "bind";
  }
  return "?";
}

std::optional<MemSpec> parse_mem_policy(const std::string& name) {
  if (name == "default") return MemSpec{MemPolicy::kDefault, 0};
  if (name == "huge") return MemSpec{MemPolicy::kHugepage, 0};
  if (name == "interleave") return MemSpec{MemPolicy::kInterleave, 0};
  if (name.rfind("bind:", 0) == 0) {
    const int node = std::atoi(name.c_str() + 5);
    if (node >= 0 && node < 64) return MemSpec{MemPolicy::kBind, node};
  }
  return std::nullopt;
}

}  // namespace ndg
