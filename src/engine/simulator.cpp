#include "engine/simulator.hpp"

#include "util/assert.hpp"

namespace ndg::detail {

SimMachine::SimMachine(std::atomic<std::uint64_t>* slots, EdgeId num_edges,
                       std::size_t delay, std::size_t delay_jitter,
                       std::uint64_t seed)
    : slots_(slots), logs_(num_edges), delay_(delay),
      delay_jitter_(delay_jitter), seed_(seed) {}

std::size_t SimMachine::effective_delay(EdgeId e, const WriteRec& w,
                                        std::uint32_t proc,
                                        std::uint32_t slot) const {
  if (delay_jitter_ == 0) return delay_;
  // Stable within a run (pure function of the identifying fields), different
  // across seeds: one seed == one noisy-but-consistent schedule.
  SplitMix64 sm(seed_ ^ (0xa24baed4963ee407ULL * (e + 1)) ^
                (static_cast<std::uint64_t>(iter_) << 40) ^
                (static_cast<std::uint64_t>(w.proc) << 24) ^
                (static_cast<std::uint64_t>(w.slot) << 12) ^
                (static_cast<std::uint64_t>(proc) << 6) ^ slot);
  const std::size_t span = 2 * delay_jitter_ + 1;
  const std::size_t lo = delay_ > delay_jitter_ ? delay_ - delay_jitter_ : 1;
  return lo + static_cast<std::size_t>(sm.next() % span);
}

bool SimMachine::visible(EdgeId e, const WriteRec& w, std::uint32_t proc,
                         std::uint32_t slot) const {
  if (w.proc == proc) {
    // Same logical processor: sequential program order (Definition 1 case 1).
    return w.slot < slot;
  }
  if (delay_ == 0) {
    // Instant propagation: visibility follows real (wave, proc) order.
    return w.slot < slot || (w.slot == slot && w.proc < proc);
  }
  // Definition 1 case 2: the result needs d update-slots to cross processors
  // (d perturbed by the seeded environmental noise when jitter is enabled).
  return slot >= w.slot + effective_delay(e, w, proc, slot);
}

bool SimMachine::tie_pick_first(EdgeId e, const WriteRec& a,
                                const WriteRec& b) const {
  // Deterministic per (seed, edge, iteration, contenders): one simulator seed
  // is one fully reproducible nondeterministic schedule.
  SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL * (e + 1)) ^
                (static_cast<std::uint64_t>(iter_) << 32) ^
                (static_cast<std::uint64_t>(a.proc) << 8) ^ b.proc);
  return (sm.next() & 1) != 0;
}

std::uint64_t SimMachine::read(EdgeId e, std::uint32_t proc, std::uint32_t slot) {
  NDG_ASSERT(e < logs_.size());
  const EdgeLog& log = logs_[e];
  std::uint64_t value = slots_[e].load(std::memory_order_relaxed);
  if (log.epoch != iter_ || log.count == 0) return value;

  const WriteRec* best = nullptr;
  for (std::uint8_t i = 0; i < log.count; ++i) {
    const WriteRec& w = log.recs[i];
    if (!visible(e, w, proc, slot)) {
      // A write this iteration the reader cannot observe: if it already
      // "happened" in wave time, this read raced it (Lemma 1's ∥ case).
      if (w.slot <= slot && w.proc != proc) ++rw_overlaps_;
      continue;
    }
    if (best == nullptr || w.slot > best->slot ||
        (w.slot == best->slot && tie_pick_first(e, w, *best))) {
      best = &w;
    }
  }
  return best != nullptr ? best->value : value;
}

void SimMachine::write(EdgeId e, std::uint64_t value, std::uint32_t proc,
                       std::uint32_t slot) {
  NDG_ASSERT(e < logs_.size());
  EdgeLog& log = logs_[e];
  if (log.epoch != iter_) {
    log.epoch = iter_;
    log.count = 0;
    touched_.push_back(e);
  }
  for (std::uint8_t i = 0; i < log.count; ++i) {
    WriteRec& w = log.recs[i];
    if (w.proc != proc) {
      // Two writers in each other's ∥ window: a write-write conflict
      // (Lemma 2). With d == 0 there is no ∥ window.
      const std::uint32_t lo = std::min(w.slot, slot);
      const std::uint32_t hi = std::max(w.slot, slot);
      if (delay_ > 0 && hi - lo < delay_ + delay_jitter_) ++ww_overlaps_;
    } else if (w.slot == slot) {
      // Same update writing the same edge again: supersede in place.
      w.value = value;
      return;
    }
  }
  NDG_ASSERT_MSG(log.count < 2,
                 "an edge has only two endpoints; at most two updates may "
                 "write it per iteration (one write per update)");
  log.recs[log.count++] = WriteRec{value, slot, proc};
}

void SimMachine::commit() {
  for (const EdgeId e : touched_) {
    EdgeLog& log = logs_[e];
    if (log.epoch != iter_ || log.count == 0) continue;
    const WriteRec* winner = &log.recs[0];
    for (std::uint8_t i = 1; i < log.count; ++i) {
      const WriteRec& w = log.recs[i];
      // "Its data at the end of the iteration will be one of the written
      // values" (Lemmas 1 & 2): later wave wins; genuine ∥ ties are decided
      // by the seeded schedule.
      if (w.slot > winner->slot ||
          (w.slot == winner->slot && tie_pick_first(e, w, *winner))) {
        winner = &w;
      }
    }
    slots_[e].store(winner->value, std::memory_order_relaxed);
    log.count = 0;
  }
  touched_.clear();
}

}  // namespace ndg::detail
