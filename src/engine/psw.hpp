#pragma once
// PSW-style deterministic execution: the in-memory model of GraphChi's
// Parallel Sliding Windows engine with its *external deterministic
// scheduler* — the paper's "DE" configuration, including why it fails to
// scale.
//
// One iteration processes the execution intervals in order (the sliding
// window pass). Inside an interval, GraphChi's deterministic scheduler may
// run in parallel only those updates whose vertices have NO neighbour inside
// the same interval — any intra-interval adjacency is a potential data
// dependence, and those updates run sequentially in label order. On
// real-world graphs almost every vertex has an intra-interval neighbour, so
// the schedule degenerates to sequential execution: the paper's observation
// that "the performances of the algorithms by the built-in external
// deterministic scheduler in GraphChi does not scale (the updates are
// actually conducted sequentially due to the data dependences among the
// updates)". run_psw_deterministic reports the achieved parallel fraction so
// the benches can show that collapse quantitatively.
//
// Determinism: the parallel batch is conflict-free (two vertices without
// intra-interval neighbours cannot share an edge, since sharing an edge IS
// intra-interval adjacency once both endpoints sit in the interval — and
// cross-interval edges are serialized by the interval order). The outcome
// equals some fixed sequential schedule independent of thread count.

#include <atomic>
#include <optional>

#include "atomics/access_policy.hpp"
#include "engine/options.hpp"
#include "engine/update_context.hpp"
#include "engine/vertex_program.hpp"
#include "graph/intervals.hpp"
#include "util/barrier.hpp"
#include "util/thread_team.hpp"
#include "util/timer.hpp"

namespace ndg {

struct PswResult : EngineResult {
  /// Updates that ran in the conflict-free parallel batches.
  std::uint64_t parallel_updates = 0;
  /// Updates forced sequential by intra-interval data dependences.
  std::uint64_t sequential_updates = 0;

  [[nodiscard]] double parallel_fraction() const {
    const std::uint64_t total = parallel_updates + sequential_updates;
    return total == 0 ? 0.0
                      : static_cast<double>(parallel_updates) /
                            static_cast<double>(total);
  }
};

template <VertexProgram Program>
PswResult run_psw_deterministic(const Graph& g, Program& prog,
                                EdgeDataArray<typename Program::EdgeData>& edges,
                                const IntervalPlan& plan,
                                const EngineOptions& opts) {
  Timer timer;
  Frontier frontier(g.num_vertices());
  frontier.seed(prog.initial_frontier(g));

  const std::size_t nt = std::max<std::size_t>(1, opts.num_threads);
  PswResult result;
  result.per_thread_updates.assign(nt, 0);

  // Per-iteration scratch: the active vertices of one interval, split into
  // the conflict-free batch and the dependent (sequential) remainder.
  std::vector<VertexId> par_batch;
  std::vector<VertexId> seq_batch;

  // One persistent team for every parallel batch of the run: the batches sit
  // inside the interval × iteration loops, where re-spawning std::threads per
  // batch dwarfed the batch itself.
  std::optional<ThreadTeam> team;
  if (nt > 1) team.emplace(nt);

  // Worker contexts for the parallel batch; plain access is safe there.
  using Ctx = UpdateContext<typename Program::EdgeData, AlignedAccess>;
  Ctx seq_ctx(g, edges, AlignedAccess{}, frontier);

  while (!frontier.empty() && result.iterations < opts.max_iterations) {
    const auto& cur = frontier.current();
    result.frontier_sizes.push_back(cur.size());

    std::size_t pos = 0;
    for (std::size_t interval = 0; interval < plan.num_intervals(); ++interval) {
      const VertexId hi = plan.boundaries[interval + 1];
      par_batch.clear();
      seq_batch.clear();
      while (pos < cur.size() && cur[pos] < hi) {
        const VertexId v = cur[pos++];
        (plan.has_intra_neighbor[v] ? seq_batch : par_batch).push_back(v);
      }

      if (par_batch.size() > 1 && nt > 1) {
        parallel_for_blocks(
            par_batch.size(), *team,
            [&](std::size_t begin, std::size_t end, std::size_t tid) {
              Ctx ctx(g, edges, AlignedAccess{}, frontier);
              for (std::size_t i = begin; i < end; ++i) {
                ctx.begin(par_batch[i], result.iterations);
                prog.update(par_batch[i], ctx);
              }
              result.per_thread_updates[tid] += end - begin;  // exclusive slot
            });
      } else {
        for (const VertexId v : par_batch) {
          seq_ctx.begin(v, result.iterations);
          prog.update(v, seq_ctx);
        }
        result.per_thread_updates[0] += par_batch.size();
      }
      result.parallel_updates += par_batch.size();

      for (const VertexId v : seq_batch) {
        seq_ctx.begin(v, result.iterations);
        prog.update(v, seq_ctx);
      }
      result.per_thread_updates[0] += seq_batch.size();
      result.sequential_updates += seq_batch.size();
    }

    result.updates += cur.size();
    frontier.advance();
    ++result.iterations;
  }

  result.converged = frontier.empty();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace ndg
