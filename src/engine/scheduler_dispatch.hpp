#pragma once
// Resolves the runtime SchedulerKind in EngineOptions to a concrete Worklist
// type once per engine run — the same enum-to-template trick the engines use
// for AtomicityMode, so the dispatch loop pays no per-item indirection.

#include <type_traits>
#include <utility>

#include "engine/options.hpp"
#include "sched/bucket.hpp"
#include "sched/static_block.hpp"
#include "sched/stealing.hpp"
#include "sched/worklist.hpp"

namespace ndg::detail {

/// Constructs WL with the tuning knobs it understands from opts.
template <Worklist WL>
WL make_worklist(std::size_t num_threads, const EngineOptions& opts) {
  if constexpr (std::is_same_v<WL, StealingWorklist>) {
    return WL(num_threads, opts.scheduler_chunk);
  } else if constexpr (std::is_same_v<WL, BucketWorklist>) {
    return WL(num_threads, opts.scheduler_buckets);
  } else {
    (void)opts;
    return WL(num_threads);
  }
}

/// Calls fn(std::type_identity<WL>{}) for the worklist type matching `kind`.
template <typename Fn>
auto dispatch_scheduler(SchedulerKind kind, Fn&& fn) {
  switch (kind) {
    case SchedulerKind::kStealing:
      return fn(std::type_identity<StealingWorklist>{});
    case SchedulerKind::kBucket:
      return fn(std::type_identity<BucketWorklist>{});
    case SchedulerKind::kStaticBlock:
      break;
  }
  return fn(std::type_identity<StaticBlockWorklist>{});
}

}  // namespace ndg::detail
