#pragma once
// Conflict tracer: the instrumentation behind the library's eligibility
// analysis ("is your graph algorithm eligible for nondeterministic
// execution?"). It classifies which *kinds* of edge conflicts an algorithm
// would produce if its updates were run concurrently.
//
// Two updates conflict when they are scheduled in the same iteration and both
// touch the same edge with at least one write (Section III). That condition
// is a property of the algorithm and the frontier, not of any particular
// interleaving — so we can detect it exactly from a *sequential* instrumented
// run: the tracer records, per edge, the last reader/writer within the
// current iteration and flags
//     read-write  — edge read by f(u) and written by f(v), u != v, same iter;
//     write-write — edge written by two distinct updates in the same iter.
//
// Conflict *counts* are lower bounds (only the most recent reader per edge is
// remembered), but the has_read_write / has_write_write classification — the
// input to Theorems 1 & 2 — is exact.

#include <cstdint>
#include <vector>

#include "engine/observer.hpp"
#include "engine/options.hpp"
#include "util/types.hpp"

namespace ndg {

class ConflictTracer final : public AccessObserver {
 public:
  explicit ConflictTracer(EdgeId num_edges);

  void on_read(EdgeId e, VertexId reader, std::uint32_t iteration) override;
  void on_write(EdgeId e, VertexId writer, std::uint32_t iteration,
                std::uint64_t slot_value) override;

  [[nodiscard]] const ConflictReport& report() const { return report_; }

 private:
  static constexpr std::uint32_t kNever = ~0u;

  struct EdgeTrace {
    std::uint32_t read_iter = kNever;
    std::uint32_t write_iter = kNever;
    VertexId reader = kInvalidVertex;
    VertexId writer = kInvalidVertex;
  };

  std::vector<EdgeTrace> traces_;
  ConflictReport report_;
};

}  // namespace ndg
