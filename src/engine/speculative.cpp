#include "engine/speculative.hpp"

namespace ndg {

SpecResolution resolve_speculative_round(
    const Graph& g, std::span<const std::vector<SpecFootprint>> footprints,
    std::span<std::vector<SpecItem>> items, std::vector<std::uint32_t>& dirty,
    std::uint32_t round) {
  NDG_ASSERT(round > 0);
  SpecResolution res;
  for (std::size_t t = 0; t < items.size(); ++t) {
    const std::vector<SpecFootprint>& foot = footprints[t];
    for (SpecItem& item : items[t]) {
      // An item conflicts when a smaller item this round dirtied the item's
      // own vertex (someone wrote our state or a shared edge) or anything in
      // its recorded footprint (we read or intend to write a vertex whose
      // region a smaller item touched). Checks strictly precede marks, so
      // only smaller items are visible here.
      bool conflict = dirty[item.v] == round;
      bool has_write = false;
      for (std::uint32_t k = item.foot_begin; k < item.foot_end; ++k) {
        const SpecFootprint& f = foot[k];
        has_write |= f.write != 0;
        conflict |= dirty[f.vtx] == round;
      }
      if (conflict) {
        item.committed = false;
        ++res.aborts;
        // The retry re-plans from post-round state and may write anywhere in
        // its static neighborhood — poison all of it so no larger item whose
        // region overlaps can commit ahead of the retry.
        dirty[item.v] = round;
        for (const VertexId u : g.out_neighbors(item.v)) dirty[u] = round;
        for (const InEdge& ie : g.in_edges(item.v)) dirty[ie.src] = round;
      } else {
        item.committed = true;
        ++res.commits;
        if (has_write) {
          dirty[item.v] = round;
          for (std::uint32_t k = item.foot_begin; k < item.foot_end; ++k) {
            if (foot[k].write != 0) dirty[foot[k].vtx] = round;
          }
        }
      }
    }
  }
  return res;
}

}  // namespace ndg
