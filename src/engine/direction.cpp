#include "engine/direction_mode.hpp"

namespace ndg {

const char* to_string(DirectionMode m) {
  switch (m) {
    case DirectionMode::kPull:
      return "pull";
    case DirectionMode::kPush:
      return "push";
    case DirectionMode::kAuto:
      return "auto";
  }
  return "?";
}

std::optional<DirectionMode> parse_direction_mode(const std::string& s) {
  if (s == "pull") return DirectionMode::kPull;
  if (s == "push") return DirectionMode::kPush;
  if (s == "auto") return DirectionMode::kAuto;
  return std::nullopt;
}

}  // namespace ndg
