#include "engine/schedule_order.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ndg {

const char* to_string(UpdateOrder o) {
  switch (o) {
    case UpdateOrder::kPrecedes:
      return "precedes";
    case UpdateOrder::kFollows:
      return "follows";
    case UpdateOrder::kConcurrent:
      return "concurrent";
  }
  return "?";
}

ScheduleOracle::ScheduleOracle(std::vector<VertexId> chosen,
                               std::size_t num_procs, std::size_t delay)
    : chosen_(std::move(chosen)), procs_(std::max<std::size_t>(1, num_procs)),
      delay_(delay) {
  NDG_ASSERT_MSG(std::is_sorted(chosen_.begin(), chosen_.end()),
                 "S_n must be ascending (small-label-first dispatch)");
}

std::size_t ScheduleOracle::rank_of(VertexId v) const {
  const auto it = std::lower_bound(chosen_.begin(), chosen_.end(), v);
  NDG_ASSERT_MSG(it != chosen_.end() && *it == v,
                 "vertex not scheduled this iteration");
  return static_cast<std::size_t>(std::distance(chosen_.begin(), it));
}

bool ScheduleOracle::scheduled(VertexId v) const {
  return std::binary_search(chosen_.begin(), chosen_.end(), v);
}

std::size_t ScheduleOracle::pi(VertexId v) const {
  const std::size_t rank = rank_of(v);
  const std::size_t p = proc(v);
  return rank - static_block(chosen_.size(), procs_, p).begin;
}

std::size_t ScheduleOracle::proc(VertexId v) const {
  const std::size_t rank = rank_of(v);
  // Invert the static block partition: find the block containing `rank`.
  for (std::size_t p = 0; p < procs_; ++p) {
    const auto [b, e] = static_block(chosen_.size(), procs_, p);
    if (rank >= b && rank < e) return p;
  }
  NDG_ASSERT_MSG(false, "rank not covered by any block");
  return 0;
}

UpdateOrder ScheduleOracle::order(VertexId v, VertexId u) const {
  NDG_ASSERT_MSG(v != u, "an update has no order with itself");
  const std::size_t pv = proc(v);
  const std::size_t pu = proc(u);
  const std::size_t piv = pi(v);
  const std::size_t piu = pi(u);

  if (pv == pu) {
    // Definition 1/2 case 1: same thread, program order.
    return piv < piu ? UpdateOrder::kPrecedes : UpdateOrder::kFollows;
  }
  if (delay_ == 0) {
    // Instant propagation: real (wave, proc) order — no ∥ pairs exist
    // (matching SimMachine's d == 0 visibility rule).
    if (piv != piu) return piv < piu ? UpdateOrder::kPrecedes : UpdateOrder::kFollows;
    return pv < pu ? UpdateOrder::kPrecedes : UpdateOrder::kFollows;
  }
  // Different threads: compare π(v) − π(u) against d (Definitions 1–3).
  if (piu >= piv + delay_) return UpdateOrder::kPrecedes;
  if (piv >= piu + delay_) return UpdateOrder::kFollows;
  return UpdateOrder::kConcurrent;
}

}  // namespace ndg
