#pragma once
// Double-buffered scheduling frontier implementing the task-generation rule of
// Section II: updates executed in iteration n schedule vertices into S_{n+1};
// at the barrier the next set becomes current.
//
// The current set has two representations (docs/PERF.md):
//
//   * sparse — the seed behaviour: an ascending vertex list, so engines apply
//     the paper's dispatch rule (static blocks per thread, small-label-first
//     within a thread) directly.
//   * dense  — a bitmap snapshot swept word-at-a-time. Engines partition the
//     words with the same static-block rule, so each thread still visits its
//     vertices in ascending label order and thread t's labels all precede
//     thread t+1's — the π(v) schedule shape is unchanged; only the cost of
//     materializing and walking S_n drops when most vertices are active.
//
// The representation is chosen per iteration in advance(): under kAuto the
// bitmap wins once |S_n| * dense_divisor > V (a bitmap sweep touches V/64
// words regardless of |S_n|, a list touches |S_n| entries; the crossover is a
// constant factor captured by the divisor).

#include <vector>

#include "engine/frontier_policy.hpp"
#include "util/bitset.hpp"
#include "util/types.hpp"

namespace ndg {

class Frontier {
 public:
  explicit Frontier(VertexId num_vertices,
                    FrontierPolicy policy = FrontierPolicy::kSparse,
                    std::size_t dense_divisor = 8);

  /// Seeds the *current* set (used once, before the first iteration).
  /// Duplicates are tolerated; the list is sorted and deduplicated.
  void seed(std::vector<VertexId> vertices);

  /// Adds v to the next iteration's set. Thread-safe; idempotent.
  void schedule(VertexId v) { next_.set(v); }

  /// Swaps next into current (single-threaded; call between barriers),
  /// choosing the representation for the new S_n.
  void advance();

  /// The vertices chosen for this iteration (S_n), ascending by label.
  /// Only valid in the sparse representation.
  [[nodiscard]] const std::vector<VertexId>& current() const {
    NDG_ASSERT(!dense_);
    return current_;
  }

  /// |S_n| regardless of representation.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// True when the current iteration's set is the bitmap.
  [[nodiscard]] bool dense() const { return dense_; }

  /// Word count of the dense bitmap (partitioning unit for dense sweeps).
  [[nodiscard]] std::size_t num_words() const { return bits_.num_words(); }

  /// Dense sweep over the word range [word_begin, word_end): calls fn(v) for
  /// every current vertex whose label / 64 lies in the range, ascending.
  /// Only valid in the dense representation.
  template <typename Fn>
  void for_each_in_words(std::size_t word_begin, std::size_t word_end,
                         Fn&& fn) const {
    NDG_ASSERT(dense_);
    bits_.for_each_in_words(word_begin, word_end, fn);
  }

  /// Whole-set traversal in ascending label order, either representation.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (dense_) {
      bits_.for_each(fn);
    } else {
      for (const VertexId v : current_) fn(static_cast<std::size_t>(v));
    }
  }

  /// Appends the current vertices with label in [lo, hi) to out, ascending —
  /// the interval query the out-of-core engine runs per loaded interval.
  /// Works in either representation.
  void collect_range(VertexId lo, VertexId hi,
                     std::vector<VertexId>& out) const;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(next_.size());
  }
  [[nodiscard]] FrontierPolicy policy() const { return policy_; }

 private:
  /// True when a set of `count` vertices should use the bitmap.
  [[nodiscard]] bool want_dense(std::size_t count) const;

  AtomicBitset next_;
  std::vector<VertexId> current_;  // sparse representation
  DenseBitset bits_;               // dense representation (snapshot of next_)
  std::size_t size_ = 0;
  bool dense_ = false;
  FrontierPolicy policy_ = FrontierPolicy::kSparse;
  std::size_t dense_divisor_ = 8;
};

}  // namespace ndg
