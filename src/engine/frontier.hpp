#pragma once
// Double-buffered scheduling frontier implementing the task-generation rule of
// Section II: updates executed in iteration n schedule vertices into S_{n+1};
// at the barrier the next set becomes current. The current set is materialized
// as an ascending vertex list so engines can apply the paper's dispatch rule
// (static blocks per thread, small-label-first within a thread).

#include <vector>

#include "util/bitset.hpp"
#include "util/types.hpp"

namespace ndg {

class Frontier {
 public:
  explicit Frontier(VertexId num_vertices);

  /// Seeds the *current* set (used once, before the first iteration).
  /// Duplicates are tolerated; the list is sorted and deduplicated.
  void seed(std::vector<VertexId> vertices);

  /// Adds v to the next iteration's set. Thread-safe; idempotent.
  void schedule(VertexId v) { next_.set(v); }

  /// Swaps next into current (single-threaded; call between barriers).
  void advance();

  /// The vertices chosen for this iteration (S_n), ascending by label.
  [[nodiscard]] const std::vector<VertexId>& current() const { return current_; }

  [[nodiscard]] bool empty() const { return current_.empty(); }
  [[nodiscard]] VertexId num_vertices() const {
    return static_cast<VertexId>(next_.size());
  }

 private:
  AtomicBitset next_;
  std::vector<VertexId> current_;
};

}  // namespace ndg
