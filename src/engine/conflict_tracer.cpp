#include "engine/conflict_tracer.hpp"

#include "util/assert.hpp"

namespace ndg {

ConflictTracer::ConflictTracer(EdgeId num_edges) : traces_(num_edges) {}

void ConflictTracer::on_read(EdgeId e, VertexId reader, std::uint32_t iteration) {
  NDG_ASSERT(e < traces_.size());
  EdgeTrace& t = traces_[e];
  if (t.write_iter == iteration && t.writer != reader) {
    ++report_.read_write;
  }
  t.read_iter = iteration;
  t.reader = reader;
}

void ConflictTracer::on_write(EdgeId e, VertexId writer, std::uint32_t iteration,
                              std::uint64_t /*slot_value*/) {
  NDG_ASSERT(e < traces_.size());
  EdgeTrace& t = traces_[e];
  if (t.read_iter == iteration && t.reader != writer) {
    ++report_.read_write;
  }
  if (t.write_iter == iteration && t.writer != writer) {
    ++report_.write_write;
  }
  t.write_iter = iteration;
  t.writer = writer;
}

}  // namespace ndg
