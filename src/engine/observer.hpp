#pragma once
// Instrumentation hook for edge accesses. Observers are attached to the
// deterministic engine by the eligibility analysis (core/eligibility.hpp):
// conflict classification needs (edge, vertex, iteration); monotonicity
// checking additionally needs the written value. Instrumented runs pay one
// predictable virtual call per access; uninstrumented runs pass nullptr and
// pay one well-predicted branch.

#include <cstdint>

#include "util/types.hpp"

namespace ndg {

class AccessObserver {
 public:
  virtual ~AccessObserver() = default;

  virtual void on_read(EdgeId /*e*/, VertexId /*reader*/,
                       std::uint32_t /*iteration*/) {}
  /// `slot_value` is the raw 8-byte representation of the written edge datum
  /// (decode with detail::from_slot<EdgeData>).
  virtual void on_write(EdgeId /*e*/, VertexId /*writer*/,
                        std::uint32_t /*iteration*/,
                        std::uint64_t /*slot_value*/) {}
};

/// Fans one access stream out to several observers.
class CompositeObserver final : public AccessObserver {
 public:
  CompositeObserver(AccessObserver* a, AccessObserver* b) : a_(a), b_(b) {}

  void on_read(EdgeId e, VertexId reader, std::uint32_t iter) override {
    a_->on_read(e, reader, iter);
    b_->on_read(e, reader, iter);
  }
  void on_write(EdgeId e, VertexId writer, std::uint32_t iter,
                std::uint64_t slot_value) override {
    a_->on_write(e, writer, iter, slot_value);
    b_->on_write(e, writer, iter, slot_value);
  }

 private:
  AccessObserver* a_;
  AccessObserver* b_;
};

}  // namespace ndg
