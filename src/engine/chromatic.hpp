#pragma once
// Chromatic scheduler: deterministic *parallel* asynchronous execution, the
// strongest deterministic baseline in the paper's related work (Section VI,
// refs [10][11]). Each iteration's frontier is processed color class by color
// class; within a class no two vertices are adjacent, so their updates share
// no edge data and can run concurrently with plain accesses. The outcome is
// identical to some fixed sequential order regardless of thread count — i.e.
// deterministic — but the color barriers are exactly the "huge time overhead
// of plotting execution paths" the paper attributes to deterministic
// scheduling.

#include <atomic>
#include <vector>

#include "atomics/access_policy.hpp"
#include "engine/coloring.hpp"
#include "engine/options.hpp"
#include "engine/update_context.hpp"
#include "engine/vertex_program.hpp"
#include "util/barrier.hpp"
#include "util/thread_team.hpp"
#include "util/timer.hpp"

namespace ndg {

template <VertexProgram Program>
EngineResult run_chromatic(const Graph& g, Program& prog,
                           EdgeDataArray<typename Program::EdgeData>& edges,
                           const Coloring& coloring, const EngineOptions& opts) {
  Timer timer;
  Frontier frontier(g.num_vertices());
  frontier.seed(prog.initial_frontier(g));

  const std::size_t nt = std::max<std::size_t>(1, opts.num_threads);
  SpinBarrier barrier(nt);
  std::vector<std::uint64_t> per_updates(nt, 0);
  std::vector<std::uint64_t> per_work(nt, 0);
  std::size_t iterations = 0;

  // Per-color vertex lists, rebuilt by thread 0 each iteration.
  std::vector<std::vector<VertexId>> buckets(coloring.num_colors);

  // Thread 0 fills the buckets for the seeded frontier before the team starts.
  for (const VertexId v : frontier.current()) buckets[coloring.color[v]].push_back(v);

  run_team(nt, [&](std::size_t tid) {
    bool sense = false;
    // Within a color class updates are conflict-free; plain access suffices.
    UpdateContext<typename Program::EdgeData, AlignedAccess> ctx(
        g, edges, AlignedAccess{}, frontier);

    std::uint64_t local_updates = 0;
    std::uint64_t local_work = 0;
    for (std::size_t iter = 0;; ++iter) {
      if (frontier.current().empty() || iter >= opts.max_iterations) break;

      for (std::uint32_t c = 0; c < coloring.num_colors; ++c) {
        const auto& bucket = buckets[c];
        const auto [begin, end] = static_block(bucket.size(), nt, tid);
        for (std::size_t i = begin; i < end; ++i) {
          ctx.begin(bucket[i], iter);
          prog.update(bucket[i], ctx);
          ++local_updates;
          local_work +=
              g.in_edges(bucket[i]).size() + g.out_neighbors(bucket[i]).size();
        }
        // Color barrier: the next class may depend on this class's writes.
        barrier.arrive_and_wait(sense);
      }

      if (tid == 0) {
        frontier.advance();
        for (auto& b : buckets) b.clear();
        for (const VertexId v : frontier.current()) {
          buckets[coloring.color[v]].push_back(v);
        }
        iterations = iter + 1;
      }
      barrier.arrive_and_wait(sense);
    }
    per_updates[tid] = local_updates;  // exclusive slot; read after join
    per_work[tid] = local_work;
  });

  EngineResult result;
  result.iterations = iterations;
  for (const std::uint64_t u : per_updates) result.updates += u;
  result.converged = frontier.current().empty();
  result.seconds = timer.seconds();
  result.per_thread_updates = std::move(per_updates);
  result.per_thread_work = std::move(per_work);
  return result;
}

}  // namespace ndg
