#pragma once
// Distributed-memory execution model — the paper's §VII future-work item
// "extending the applicability of results in this paper to more scenarios,
// such as ... distributed systems", made concrete.
//
// K logical machines own disjoint vertex ranges (block or hash partition).
// Every edge keeps one replica per endpoint machine: the source-side and the
// target-side copy of its 8-byte datum. An update runs on its vertex's
// machine and reads/writes its *local* replicas with immediate (Gauss–Seidel)
// visibility; a write whose other endpoint lives remotely additionally sends
// an update message that lands after `network_delay` rounds, overwriting the
// remote replica and scheduling the remote endpoint (the Section II
// task-generation rule, carried by the network).
//
// This is the shared-memory model of the paper with the ∥ window stretched
// to the network: replicas of one edge can disagree for up to
// `network_delay` rounds (the distributed read–write conflict), and two
// endpoints writing "their" edge concurrently leave the replicas crossed
// until the deliveries land (the distributed write–write conflict, resolved
// last-delivery-wins with a seeded tie-break — Lemma 2's "one of the written
// values"). The theorems transfer: monotone algorithms re-correct diverged
// replicas exactly as they recover corrupted edges, which the tests verify
// bit-exactly against the references.
//
// Execution is simulated on one host thread (machines are logically
// parallel; cross-machine visibility is what's modeled), deterministic given
// the seed.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "atomics/edge_data.hpp"
#include "engine/vertex_program.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ndg {

struct DistOptions {
  std::size_t num_machines = 4;
  /// Rounds a remote edge write needs to reach the peer replica (>= 1).
  std::size_t network_delay = 1;
  /// Orders same-round deliveries to the same replica.
  std::uint64_t seed = 1;
  std::size_t max_rounds = 100000;
  enum class Partition { kBlock, kHash };
  Partition partition = Partition::kBlock;
};

struct DistResult {
  std::size_t rounds = 0;
  std::uint64_t updates = 0;
  /// Remote-write messages sent across machines.
  std::uint64_t messages = 0;
  /// Deliveries that found the peer replica holding a different value — the
  /// observable replica-divergence (distributed conflict) count.
  std::uint64_t replica_divergences = 0;
  bool converged = false;
  double seconds = 0.0;
  std::vector<std::uint64_t> frontier_sizes;  // active vertices per round
};

namespace detail {

/// Non-templated distributed machinery over raw 8-byte replicas.
class DistMachine {
 public:
  DistMachine(const Graph& g, const DistOptions& opts);

  [[nodiscard]] std::size_t machine_of(VertexId v) const {
    return opts_.partition == DistOptions::Partition::kHash
               ? (v * 0x9e3779b1u) % opts_.num_machines
               : static_cast<std::size_t>(v) * opts_.num_machines /
                     std::max<std::size_t>(1, num_vertices_);
  }

  /// Initializes both replicas of every edge from the program's edge array.
  void load_replicas(const std::atomic<std::uint64_t>* slots, EdgeId num_edges);
  /// Writes the locally-visible replica values back (dst side wins for
  /// split edges only if equal; diverged replicas should not remain at
  /// convergence — callers may assert via replicas_consistent()).
  void store_replicas(std::atomic<std::uint64_t>* slots, EdgeId num_edges) const;
  [[nodiscard]] bool replicas_consistent() const;

  [[nodiscard]] std::uint64_t read_side(EdgeId e, bool src_side) const {
    return src_side ? src_replica_[e] : dst_replica_[e];
  }

  /// Local write by the `src_side` owner; sends a message if the peer
  /// endpoint lives on another machine. Returns true if a message was sent.
  bool write_side(EdgeId e, bool src_side, std::uint64_t value,
                  std::size_t my_machine, std::size_t peer_machine,
                  VertexId peer_vertex);

  /// Delivers every message due this round; for each, calls
  /// schedule(peer_vertex) after applying the write.
  template <typename ScheduleFn>
  void deliver_round(ScheduleFn&& schedule) {
    if (in_flight_.empty()) return;
    auto batch = std::move(in_flight_.front());
    in_flight_.pop_front();
    // Same-(edge,side) collisions within a batch: seeded order, last wins.
    if (batch.size() > 1) {
      Xoshiro256 rng(seed_ ^ round_);
      for (std::size_t i = batch.size() - 1; i > 0; --i) {
        std::swap(batch[i], batch[rng.next_below(i + 1)]);
      }
    }
    for (const Msg& m : batch) {
      std::uint64_t& replica = m.to_src_side ? src_replica_[m.edge]
                                             : dst_replica_[m.edge];
      if (replica != m.value) ++divergences_;
      replica = m.value;
      schedule(m.target_vertex);
    }
  }

  void begin_round(std::uint32_t round) { round_ = round; }
  [[nodiscard]] bool messages_in_flight() const;
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t divergences() const { return divergences_; }

 private:
  struct Msg {
    EdgeId edge;
    std::uint64_t value;
    VertexId target_vertex;
    bool to_src_side;
  };

  const DistOptions opts_;
  VertexId num_vertices_;
  std::vector<std::uint64_t> src_replica_;
  std::vector<std::uint64_t> dst_replica_;
  /// in_flight_[k] = messages arriving k+1 rounds from now.
  std::deque<std::vector<Msg>> in_flight_;
  std::uint64_t seed_;
  std::uint32_t round_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t divergences_ = 0;
};

/// Update context over the machine-local replicas.
template <EdgePod ED>
class DistContext {
 public:
  DistContext(const Graph& g, DistMachine& machine,
              std::vector<std::vector<VertexId>>& next_frontiers,
              std::vector<DenseBitset>& next_flags)
      : g_(&g), machine_(&machine), next_frontiers_(&next_frontiers),
        next_flags_(&next_flags) {}

  void begin(VertexId v, std::size_t round, std::size_t my_machine) {
    v_ = v;
    round_ = round;
    my_machine_ = my_machine;
  }

  [[nodiscard]] VertexId vertex() const { return v_; }
  [[nodiscard]] std::size_t iteration() const { return round_; }
  [[nodiscard]] const Graph& graph() const { return *g_; }

  [[nodiscard]] std::span<const InEdge> in_edges() const {
    return g_->in_edges(v_);
  }
  [[nodiscard]] std::span<const VertexId> out_neighbors() const {
    return g_->out_neighbors(v_);
  }
  [[nodiscard]] EdgeId out_edge_id(std::size_t k) const {
    return g_->out_edges_begin(v_) + k;
  }

  [[nodiscard]] ED read(EdgeId e) {
    // My side of the edge: the source side iff I am the edge's source.
    return detail::from_slot<ED>(
        machine_->read_side(e, g_->edge_source(e) == v_));
  }

  void write(EdgeId e, VertexId other_endpoint, ED value) {
    write_impl(e, other_endpoint, value, /*schedule_peer=*/true);
  }

  void write_silent(EdgeId e, ED value) {
    // Silent writes have no peer to schedule; infer the peer side anyway.
    const VertexId src = g_->edge_source(e);
    const VertexId dst = g_->edge_target(e);
    const VertexId other = src == v_ ? dst : src;
    write_impl(e, other, value, /*schedule_peer=*/false);
  }

  [[nodiscard]] ED exchange(EdgeId e, ED value) {
    const ED old = read(e);
    write_silent(e, value);
    return old;
  }

  template <typename Fn>
  void accumulate(EdgeId e, VertexId other_endpoint, Fn fn) {
    write(e, other_endpoint, fn(read(e)));
  }

  void schedule(VertexId u) {
    const std::size_t m = machine_->machine_of(u);
    if (!(*next_flags_)[m].test(u)) {
      (*next_flags_)[m].set(u);
      (*next_frontiers_)[m].push_back(u);
    }
  }

 private:
  void write_impl(EdgeId e, VertexId other_endpoint, ED value,
                  bool schedule_peer) {
    const bool i_am_source = g_->edge_source(e) == v_;
    const std::size_t peer_machine = machine_->machine_of(other_endpoint);
    const bool sent = machine_->write_side(e, i_am_source,
                                           detail::to_slot(value), my_machine_,
                                           peer_machine, other_endpoint);
    if (schedule_peer && !sent) {
      // Local peer: schedule directly (remote peers are scheduled by the
      // message delivery).
      schedule(other_endpoint);
    }
  }

  const Graph* g_;
  DistMachine* machine_;
  std::vector<std::vector<VertexId>>* next_frontiers_;
  std::vector<DenseBitset>* next_flags_;
  VertexId v_ = kInvalidVertex;
  std::size_t round_ = 0;
  std::size_t my_machine_ = 0;
};

}  // namespace detail

template <VertexProgram Program>
DistResult run_distributed(const Graph& g, Program& prog,
                           EdgeDataArray<typename Program::EdgeData>& edges,
                           const DistOptions& opts) {
  Timer timer;
  const std::size_t machines = std::max<std::size_t>(1, opts.num_machines);
  DistOptions effective = opts;
  effective.num_machines = machines;
  effective.network_delay = std::max<std::size_t>(1, opts.network_delay);

  detail::DistMachine machine(g, effective);
  // Whole-array replica snapshot before any update runs: quiescent, so the
  // access policy is not in play.  ndg-lint: allow(raw-slots)
  machine.load_replicas(edges.slots(), edges.size());

  // Per-machine frontiers (current and next), deduplicated via bitsets.
  std::vector<std::vector<VertexId>> current(machines);
  std::vector<std::vector<VertexId>> next(machines);
  std::vector<DenseBitset> next_flags(machines);
  for (auto& f : next_flags) f = DenseBitset(g.num_vertices());

  detail::DistContext<typename Program::EdgeData> ctx(g, machine, next,
                                                      next_flags);
  auto deliver_schedule = [&](VertexId u) { ctx.schedule(u); };

  for (const VertexId v : prog.initial_frontier(g)) {
    const std::size_t m = machine.machine_of(v);
    if (!next_flags[m].test(v)) {
      next_flags[m].set(v);
      next[m].push_back(v);
    }
  }

  DistResult result;
  for (;;) {
    // Round boundary: promote next -> current.
    std::size_t active = 0;
    for (std::size_t m = 0; m < machines; ++m) {
      current[m] = std::move(next[m]);
      next[m].clear();
      std::sort(current[m].begin(), current[m].end());
      next_flags[m].clear();
      active += current[m].size();
    }
    const bool in_flight = machine.messages_in_flight();
    if ((active == 0 && !in_flight) || result.rounds >= effective.max_rounds) {
      result.converged = active == 0 && !in_flight;
      break;
    }
    result.frontier_sizes.push_back(active);
    machine.begin_round(static_cast<std::uint32_t>(result.rounds));

    // 1. Network: deliver messages due this round (scheduling into `next`).
    machine.deliver_round(deliver_schedule);

    // 2. Compute: every machine processes its active vertices, label order.
    for (std::size_t m = 0; m < machines; ++m) {
      for (const VertexId v : current[m]) {
        ctx.begin(v, result.rounds, m);
        prog.update(v, ctx);
        ++result.updates;
      }
    }
    ++result.rounds;
  }

  result.messages = machine.messages_sent();
  result.replica_divergences = machine.divergences();
  // Quiescent write-back after the last round.  ndg-lint: allow(raw-slots)
  machine.store_replicas(edges.slots(), edges.size());
  result.seconds = timer.seconds();
  return result;
}

}  // namespace ndg
