#pragma once
// Synchronous (Bulk Synchronous Parallel / Pregel-style) execution: the
// effectiveness of updates is postponed and becomes visible at the beginning
// of the next iteration (Section I). This engine is the premise of Theorem 1
// ("provided algorithm A converges with synchronous model execution...") —
// the eligibility analysis runs an algorithm here first.
//
// Implementation: reads see the committed edge values of the previous
// iteration; writes are buffered in a log and applied at the iteration
// boundary. If two updates write the same edge in one iteration, the later
// update in label order wins — a deterministic stand-in for Pregel's message
// combiner. Execution is sequential: BSP needs no intra-iteration parallelism
// for its role here (correctness baseline), and sequential application keeps
// it bit-reproducible.

#include <vector>

#include "atomics/edge_data.hpp"
#include "engine/frontier.hpp"
#include "engine/options.hpp"
#include "engine/vertex_program.hpp"
#include "perf/prefetch.hpp"
#include "util/timer.hpp"

namespace ndg {

namespace detail {

/// Context with postponed write visibility (BSP semantics). Reads within an
/// update do NOT observe that update's own buffered writes — matching the
/// synchronous model, where all of iteration n reads the state of n-1.
template <EdgePod ED>
class BspContext {
 public:
  BspContext(const Graph& g, EdgeDataArray<ED>& committed, Frontier& frontier)
      : g_(&g), committed_(&committed), frontier_(&frontier) {}

  void begin(VertexId v, std::size_t iteration) {
    v_ = v;
    iter_ = iteration;
  }

  [[nodiscard]] VertexId vertex() const { return v_; }
  [[nodiscard]] std::size_t iteration() const { return iter_; }
  [[nodiscard]] const Graph& graph() const { return *g_; }

  [[nodiscard]] std::span<const InEdge> in_edges() const {
    return g_->in_edges(v_);
  }
  [[nodiscard]] std::span<const VertexId> out_neighbors() const {
    return g_->out_neighbors(v_);
  }
  [[nodiscard]] EdgeId out_edge_id(std::size_t k) const {
    return g_->out_edges_begin(v_) + k;
  }

  [[nodiscard]] ED read(EdgeId e) { return committed_->get(e); }

  /// Cache hint for an upcoming read(e) (perf/prefetch.hpp). Address-only
  /// slot use, no datum observed.  ndg-lint: allow(raw-slots)
  void prefetch(EdgeId e) const { perf::prefetch_read(committed_->slots() + e); }

  void write(EdgeId e, VertexId other_endpoint, ED value) {
    log_.push_back({e, value});
    frontier_->schedule(other_endpoint);
  }

  void write_silent(EdgeId e, ED value) { log_.push_back({e, value}); }

  /// BSP exchange: returns the COMMITTED value; the replacement lands at the
  /// iteration boundary. Two same-iteration exchanges both see the committed
  /// value — push-mode drains genuinely break under the synchronous model,
  /// which is why push algorithms fail the Theorem 1 premise (see
  /// algorithms/push_pagerank*.hpp).
  [[nodiscard]] ED exchange(EdgeId e, ED value) {
    const ED old = committed_->get(e);
    log_.push_back({e, value});
    return old;
  }

  template <typename Fn>
  void accumulate(EdgeId e, VertexId other_endpoint, Fn fn) {
    log_.push_back({e, fn(committed_->get(e))});
    frontier_->schedule(other_endpoint);
  }

  void schedule(VertexId u) { frontier_->schedule(u); }

  /// Applies the buffered writes (in program order; last writer wins).
  void commit() {
    for (const auto& w : log_) committed_->set(w.edge, w.value);
    log_.clear();
  }

 private:
  struct Write {
    EdgeId edge;
    ED value;
  };

  const Graph* g_;
  EdgeDataArray<ED>* committed_;
  Frontier* frontier_;
  std::vector<Write> log_;
  VertexId v_ = kInvalidVertex;
  std::size_t iter_ = 0;
};

}  // namespace detail

template <VertexProgram Program>
EngineResult run_bsp(const Graph& g, Program& prog,
                     EdgeDataArray<typename Program::EdgeData>& edges,
                     const EngineOptions& opts) {
  Timer timer;
  Frontier frontier(g.num_vertices(), opts.frontier_policy,
                    opts.frontier_dense_divisor);
  frontier.seed(prog.initial_frontier(g));
  detail::BspContext<typename Program::EdgeData> ctx(g, edges, frontier);

  EngineResult result;
  while (!frontier.empty() && result.iterations < opts.max_iterations) {
    result.frontier_sizes.push_back(frontier.size());
    result.frontier_dense.push_back(frontier.dense() ? 1 : 0);
    // for_each visits S_n ascending in either representation, so the update
    // order — and therefore the bit-exact result — is representation-blind.
    frontier.for_each([&](std::size_t v) {
      ctx.begin(static_cast<VertexId>(v), result.iterations);
      prog.update(static_cast<VertexId>(v), ctx);
      ++result.updates;
    });
    ctx.commit();
    frontier.advance();
    ++result.iterations;
  }
  result.converged = frontier.empty();
  result.seconds = timer.seconds();
  return result;
}

template <VertexProgram Program>
EngineResult run_bsp(const Graph& g, Program& prog,
                     EdgeDataArray<typename Program::EdgeData>& edges,
                     std::size_t max_iterations = 100000) {
  EngineOptions opts;
  opts.max_iterations = max_iterations;
  return run_bsp(g, prog, edges, opts);
}

}  // namespace ndg
