#pragma once
// Runtime selector for the frontier representation (engine/frontier.hpp,
// docs/PERF.md). Separate tiny header so EngineOptions can name the policy
// without pulling in the frontier implementation.

#include <optional>
#include <string>

namespace ndg {

/// How the current set S_n is materialized each iteration.
enum class FrontierPolicy {
  kSparse,  // always the sorted vertex list (the seed behaviour)
  kDense,   // always the bitmap sweep
  kAuto,    // bitmap when |S_n| * divisor > V, list otherwise
};

[[nodiscard]] const char* to_string(FrontierPolicy policy);

/// Parses the CLI spelling ("sparse" | "dense" | "auto").
[[nodiscard]] std::optional<FrontierPolicy> parse_frontier_policy(
    const std::string& name);

}  // namespace ndg
