#pragma once
// The update function's window onto the system: edge reads/writes routed
// through an atomicity policy, plus scheduling. One context lives per worker
// thread; begin() repoints it at the next vertex.

#include <span>

#include "atomics/access_policy.hpp"
#include "atomics/edge_data.hpp"
#include "engine/frontier.hpp"
#include "engine/observer.hpp"
#include "graph/graph.hpp"
#include "perf/prefetch.hpp"

namespace ndg {

/// GraphT is any type exposing the Graph adjacency surface (num_vertices,
/// in_edges, out_neighbors, out_edge_id). The default is the static CSR
/// Graph; the dynamic overlay (src/dyn/dyn_graph.hpp) substitutes its
/// mutable view so the same programs run on a concurrently-mutated topology.
template <EdgePod ED, typename Policy, typename GraphT = Graph>
class UpdateContext {
 public:
  using EdgeData = ED;

  UpdateContext(const GraphT& g, EdgeDataArray<ED>& edges, Policy policy,
                Frontier& frontier, AccessObserver* observer = nullptr)
      : g_(&g), edges_(&edges), policy_(policy), frontier_(&frontier),
        observer_(observer) {}

  void begin(VertexId v, std::size_t iteration) {
    v_ = v;
    iter_ = static_cast<std::uint32_t>(iteration);
    // Manifest-enforcing policies (analysis/verifying_access.hpp) track the
    // vertex under update to classify each edge access; plain policies have
    // no hook and pay nothing.
    if constexpr (requires(Policy& p) { p.begin_update(v); }) {
      policy_.begin_update(v);
    }
  }

  [[nodiscard]] VertexId vertex() const { return v_; }
  [[nodiscard]] std::size_t iteration() const { return iter_; }
  [[nodiscard]] const GraphT& graph() const { return *g_; }

  [[nodiscard]] std::span<const InEdge> in_edges() const {
    return g_->in_edges(v_);
  }
  [[nodiscard]] std::span<const VertexId> out_neighbors() const {
    return g_->out_neighbors(v_);
  }
  [[nodiscard]] EdgeId out_edge_id(std::size_t k) const {
    return g_->out_edge_id(v_, k);
  }

  [[nodiscard]] ED read(EdgeId e) {
    if (observer_ != nullptr) observer_->on_read(e, v_, iter_);
    return policy_.read(*edges_, e);
  }

  /// Hints the cache about an upcoming read(e) (see perf/prefetch.hpp —
  /// programs reach this through the concept-gated prefetch_edge helper).
  /// Address-only slot use: no datum is observed, so the access policy is
  /// not bypassed.  ndg-lint: allow(raw-slots)
  void prefetch(EdgeId e) const { perf::prefetch_read(edges_->slots() + e); }

  /// Writes edge e and schedules its other endpoint for the next iteration
  /// (Section II task-generation rule: "if f(v) updates one of v's incident
  /// edges, say v->u or u->v, it must add u to S_{n+1}").
  void write(EdgeId e, VertexId other_endpoint, ED value) {
    if (observer_ != nullptr) {
      observer_->on_write(e, v_, iter_, detail::to_slot(value));
    }
    policy_.write(*edges_, e, value);
    frontier_->schedule(other_endpoint);
  }

  /// Writes edge e WITHOUT scheduling anyone. This steps outside the Section
  /// II task-generation rule; it exists for push-mode programs that clear
  /// accumulator edges (the cleared endpoint must not be re-activated).
  /// Programs using it give up the Theorem 1/2 guarantees tied to that rule.
  void write_silent(EdgeId e, ED value) {
    if (observer_ != nullptr) {
      observer_->on_write(e, v_, iter_, detail::to_slot(value));
    }
    policy_.write(*edges_, e, value);
  }

  /// Atomically swaps `value` into edge e and returns the old datum (the
  /// drain primitive of push-mode algorithms; §VII future work). Atomicity
  /// is the policy's: genuine under locked/relaxed/seq_cst, racy under
  /// aligned plain access. Does not schedule.
  [[nodiscard]] ED exchange(EdgeId e, ED value) {
    if (observer_ != nullptr) {
      observer_->on_read(e, v_, iter_);
      observer_->on_write(e, v_, iter_, detail::to_slot(value));
    }
    return policy_.exchange(*edges_, e, value);
  }

  /// Atomically replaces edge e's datum x with fn(x) and schedules the other
  /// endpoint (the combine primitive of push-mode algorithms).
  template <typename Fn>
  void accumulate(EdgeId e, VertexId other_endpoint, Fn fn) {
    if (observer_ != nullptr) {
      observer_->on_read(e, v_, iter_);
      observer_->on_write(e, v_, iter_,
                          detail::to_slot(fn(policy_.read(*edges_, e))));
    }
    policy_.accumulate(*edges_, e, fn);
    frontier_->schedule(other_endpoint);
  }

  void schedule(VertexId u) { frontier_->schedule(u); }

 private:
  const GraphT* g_;
  EdgeDataArray<ED>* edges_;
  Policy policy_;
  Frontier* frontier_;
  AccessObserver* observer_;
  VertexId v_ = kInvalidVertex;
  std::uint32_t iter_ = 0;
};

}  // namespace ndg
