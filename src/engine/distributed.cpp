#include "engine/distributed.hpp"

#include "graph/graph.hpp"
#include "util/assert.hpp"

namespace ndg::detail {

DistMachine::DistMachine(const Graph& g, const DistOptions& opts)
    : opts_(opts), num_vertices_(g.num_vertices()),
      src_replica_(g.num_edges(), 0), dst_replica_(g.num_edges(), 0),
      seed_(opts.seed) {
  NDG_ASSERT(opts_.num_machines >= 1);
  NDG_ASSERT(opts_.network_delay >= 1);
}

void DistMachine::load_replicas(const std::atomic<std::uint64_t>* slots,
                                EdgeId num_edges) {
  NDG_ASSERT(num_edges == src_replica_.size());
  for (EdgeId e = 0; e < num_edges; ++e) {
    const std::uint64_t v = slots[e].load(std::memory_order_relaxed);
    src_replica_[e] = v;
    dst_replica_[e] = v;
  }
}

void DistMachine::store_replicas(std::atomic<std::uint64_t>* slots,
                                 EdgeId num_edges) const {
  NDG_ASSERT(num_edges == src_replica_.size());
  // The destination side is the gather side in pull mode; expose it as the
  // canonical post-run edge state (tests also check replicas_consistent()).
  for (EdgeId e = 0; e < num_edges; ++e) {
    slots[e].store(dst_replica_[e], std::memory_order_relaxed);
  }
}

bool DistMachine::replicas_consistent() const {
  for (EdgeId e = 0; e < src_replica_.size(); ++e) {
    if (src_replica_[e] != dst_replica_[e]) return false;
  }
  return true;
}

bool DistMachine::write_side(EdgeId e, bool src_side, std::uint64_t value,
                             std::size_t my_machine, std::size_t peer_machine,
                             VertexId peer_vertex) {
  // Local (immediate, Gauss–Seidel) visibility on my own replica.
  (src_side ? src_replica_[e] : dst_replica_[e]) = value;
  if (peer_machine == my_machine) {
    // Co-located endpoints share state: keep both sides coherent.
    (src_side ? dst_replica_[e] : src_replica_[e]) = value;
    return false;
  }
  // Remote peer: the value crosses the network.
  while (in_flight_.size() < opts_.network_delay) in_flight_.emplace_back();
  in_flight_[opts_.network_delay - 1].push_back(
      Msg{e, value, peer_vertex, /*to_src_side=*/!src_side});
  ++messages_sent_;
  return true;
}

bool DistMachine::messages_in_flight() const {
  for (const auto& batch : in_flight_) {
    if (!batch.empty()) return true;
  }
  return false;
}

}  // namespace ndg::detail
