#pragma once
// The paper's Definitions 1–3 as a standalone, queryable object: given the
// per-iteration dispatch (P processors, Fig. 1 static blocks over the chosen
// updates) and the propagation delay d, answer "what is the order between
// f(v) and f(u)?". The simulator embeds the same rules in its hot path; this
// oracle exists so the *model itself* can be unit-tested (trichotomy,
// duality, the d→0 and d→∞ limits) and so analyses can reason about a
// schedule without executing it.

#include <cstddef>
#include <vector>

#include "util/thread_team.hpp"
#include "util/types.hpp"

namespace ndg {

/// f(v) ≺ f(u): u can use v's results. f(v) ≻ f(u): v can use u's.
/// f(v) ∥ f(u): neither (Definition 3).
enum class UpdateOrder { kPrecedes, kFollows, kConcurrent };

[[nodiscard]] const char* to_string(UpdateOrder o);

class ScheduleOracle {
 public:
  /// `chosen` is S_n ascending (the paper's small-label-first dispatch);
  /// vertices not in S_n have no order defined this iteration.
  ScheduleOracle(std::vector<VertexId> chosen, std::size_t num_procs,
                 std::size_t delay);

  /// True if v is scheduled this iteration.
  [[nodiscard]] bool scheduled(VertexId v) const;

  /// The absolute scheduling order π(v) (position within its processor's
  /// block) — the paper's π(v) = L_v % (V/P) in the full-frontier case.
  [[nodiscard]] std::size_t pi(VertexId v) const;

  /// The processor executing f(v).
  [[nodiscard]] std::size_t proc(VertexId v) const;

  /// Order between f(v) and f(u) per Definitions 1–3. Both must be scheduled.
  [[nodiscard]] UpdateOrder order(VertexId v, VertexId u) const;

 private:
  /// Index of v within `chosen` (== rank in the ascending dispatch).
  [[nodiscard]] std::size_t rank_of(VertexId v) const;

  std::vector<VertexId> chosen_;
  std::size_t procs_;
  std::size_t delay_;
};

}  // namespace ndg
