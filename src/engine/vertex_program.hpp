#pragma once
// The vertex-program contract: the paper's Algorithm 1 (Gather–Compute–Scatter
// update function in pull mode) as a duck-typed C++ interface.
//
// A program type P must provide:
//
//   using EdgeData = <EdgePod>;          // per-edge datum, <= 8 bytes
//   static constexpr bool kMonotonic;    // claimed monotonicity (Theorem 2);
//                                        // core/monotonicity.hpp verifies it
//   const char* name() const;
//   void init(const Graph&, EdgeDataArray<EdgeData>&);
//       // sets initial vertex data (program-owned) and edge data
//   std::vector<VertexId> initial_frontier(const Graph&) const;
//       // the vertices of S_0
//   template <typename Ctx> void update(VertexId v, Ctx& ctx);
//       // the update function f(v); may only touch v's own vertex data and
//       // v's incident edges through ctx (the paper's update scope).
//       // CONCURRENCY: the nondeterministic engines call update() from many
//       // threads at once. Per-vertex state arrays are safe (distinct
//       // elements); any other mutable program state (scratch buffers,
//       // counters) must be thread_local or per-update.
//   static double project(EdgeData);     // numeric view of an edge datum, used
//                                        // by the monotonicity checker
//
// The Ctx argument (see update_context.hpp) exposes:
//   ctx.in_edges()            span<const InEdge>  — gather inputs
//   ctx.out_neighbors()       span<const VertexId>
//   ctx.out_edge_id(k)        EdgeId of the k-th out-edge
//   ctx.read(e)               EdgeData            — atomic per Section III
//   ctx.write(e, other, v)    write + schedule `other` for the next iteration
//                             (the task-generation rule of Section II)
//   ctx.schedule(u)           explicit scheduling (e.g. self-rescheduling)
//
// Because update() is a template, the same program source runs unchanged on
// every engine (deterministic, nondeterministic × any atomicity policy, BSP,
// chromatic, and the logical-processor simulator) — which is precisely the
// experiment the paper performs with GraphChi's scheduler interfaces.

#include <concepts>
#include <string>
#include <vector>

#include "atomics/edge_data.hpp"
#include "graph/graph.hpp"

namespace ndg {

/// Compile-time sanity check for the static parts of the contract (the
/// update() template itself is checked at instantiation).
template <typename P>
concept VertexProgram = requires(P p, const Graph& g,
                                 EdgeDataArray<typename P::EdgeData>& edges,
                                 typename P::EdgeData ed) {
  requires EdgePod<typename P::EdgeData>;
  { P::kMonotonic } -> std::convertible_to<bool>;
  { p.name() } -> std::convertible_to<const char*>;
  { p.init(g, edges) };
  { p.initial_frontier(g) } -> std::same_as<std::vector<VertexId>>;
  { P::project(ed) } -> std::convertible_to<double>;
};

}  // namespace ndg
