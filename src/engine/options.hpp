#pragma once
// Common option/result types shared by all execution engines.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "atomics/access_policy.hpp"
#include "delay/delay_spec.hpp"
#include "engine/direction_mode.hpp"
#include "engine/frontier_policy.hpp"
#include "mem/mem_policy.hpp"
#include "sched/scheduler_kind.hpp"

namespace ndg {

struct EngineOptions {
  /// Number of OS threads (the paper's "participating processors" P).
  std::size_t num_threads = 1;
  /// Safety cap; engines report converged=false when they hit it.
  std::size_t max_iterations = 100000;
  /// Atomicity method for the nondeterministic engine (Section III).
  AtomicityMode mode = AtomicityMode::kRelaxed;
  /// How updates are dispatched over threads (docs/SCHEDULERS.md). The
  /// default reproduces the paper's Fig. 1 static-block dispatch.
  SchedulerKind scheduler = SchedulerKind::kStaticBlock;
  /// Chunk size for SchedulerKind::kStealing (items per steal unit).
  std::size_t scheduler_chunk = 32;
  /// Bucket count for SchedulerKind::kBucket.
  std::size_t scheduler_buckets = 64;
  /// Frontier representation (docs/PERF.md). kAuto switches to the dense
  /// bitmap when |S_n| * frontier_dense_divisor > V.
  FrontierPolicy frontier_policy = FrontierPolicy::kAuto;
  std::size_t frontier_dense_divisor = 8;
  /// Edge-parallel hub gather: vertices with in_degree > hub_threshold are
  /// split into edge chunks co-scheduled across the worklist. 0 disables
  /// splitting. Only engines with a shared worklist (kStealing/kBucket)
  /// split; static-block dispatch has no queue to co-schedule chunks on.
  std::size_t hub_threshold = 0;
  /// Edges per hub chunk when splitting.
  std::size_t hub_chunk_edges = 1024;
  /// Placement for engine-owned scratch (hub-gather partials). Graph and
  /// edge-data placement is requested at build time (GraphBuildOptions).
  MemSpec mem{};
  /// Direction request for the direction-optimizing engine
  /// (engine/direction.hpp): pull every iteration, push every iteration, or
  /// per-iteration auto from the hybrid frontier's density signal. Callers
  /// are expected to gate the request through the static direction verdicts
  /// first (analysis/directional_manifest.hpp resolve_direction); the engine
  /// itself pins to pull when the program has no push entry point. Ignored
  /// by every other engine.
  DirectionMode direction = DirectionMode::kAuto;
  /// Bounded-staleness injection (docs/DELAY.md): with delay.steps > 0 the
  /// delayed entry points (src/delay/delayed_engine.hpp) buffer every write
  /// in a per-thread queue for a controlled number of update steps before it
  /// becomes visible — the paper's propagation delay d as a runtime knob.
  /// Ignored by the undelayed engines; steps == 0 means baseline behaviour.
  DelaySpec delay{};
};

/// Potential-conflict counts observed by the ConflictTracer (lower bounds —
/// see conflict_tracer.hpp).
struct ConflictReport {
  std::uint64_t read_write = 0;
  std::uint64_t write_write = 0;

  [[nodiscard]] bool has_read_write() const { return read_write > 0; }
  [[nodiscard]] bool has_write_write() const { return write_write > 0; }
};

struct EngineResult {
  /// Iterations executed (the paper's N; I_0 is the initial state so the
  /// count here is the number of update rounds run).
  std::size_t iterations = 0;
  /// Total update-function invocations across all iterations and threads.
  std::uint64_t updates = 0;
  /// True if the frontier drained before max_iterations.
  bool converged = false;
  /// Wall-clock compute time (graph loading excluded, as in the paper).
  double seconds = 0.0;
  /// Filled only when a tracer was attached.
  ConflictReport conflicts;
  /// |S_n| for every executed iteration — the convergence curve. One entry
  /// per iteration; cheap enough to record unconditionally. 64-bit: at
  /// Graph500 scale-27+ a dense frontier's size does not fit 32 bits once
  /// hub splitting multiplies entries, and a silent wrap corrupts the curve.
  std::vector<std::uint64_t> frontier_sizes;
  /// Update invocations per thread (empty for sequential engines). Sums to
  /// `updates` for engines that run the whole algorithm on one team.
  std::vector<std::uint64_t> per_thread_updates;
  /// Degree-weighted work per thread: each update of v counts
  /// in_degree(v) + out_degree(v) edge touches. Update *counts* are equalised
  /// by construction under static blocks, so load imbalance on skewed graphs
  /// only shows up in this weighted view.
  std::vector<std::uint64_t> per_thread_work;
  /// Worklist telemetry (nonzero only under SchedulerKind::kStealing).
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  /// Representation chosen for S_n each iteration (parallel to
  /// frontier_sizes; true = dense bitmap). Empty for engines without the
  /// hybrid frontier.
  std::vector<std::uint8_t> frontier_dense;
  /// Hub-gather telemetry: hubs split and edge chunks dispatched.
  std::uint64_t hub_splits = 0;
  std::uint64_t hub_chunks = 0;

  /// Direction executed each iteration (parallel to frontier_sizes; 1 =
  /// push). Empty for engines without direction dispatch
  /// (engine/direction.hpp is the only producer).
  std::vector<std::uint8_t> direction_push;
  /// Number of adjacent iteration pairs that flipped direction.
  std::uint64_t direction_switches = 0;

  // --- Staleness telemetry (docs/DELAY.md; nonzero only for the delayed
  // engines in src/delay/). Staleness is measured at commit time: how many
  // of the writing thread's own update steps a write sat buffered before it
  // became visible. ---
  /// Writes routed through a delay queue (== total commits).
  std::uint64_t delayed_writes = 0;
  /// Largest observed staleness of any committed write, in steps. Bounded by
  /// DelaySpec::max_steps() (forced end-of-run flushes can only LOWER it).
  std::uint64_t max_staleness = 0;
  /// Exact sum of all observed stalenesses (for an unrounded mean).
  std::uint64_t staleness_total = 0;
  /// Observed-d histogram: staleness_hist[s] counts commits held exactly s
  /// steps; the last bucket absorbs everything >= its index. Empty when no
  /// delay layer ran.
  std::vector<std::uint64_t> staleness_hist;

  // --- Speculation telemetry (docs/SPECULATION.md; nonzero only for the
  // speculative engine in engine/speculative.hpp). Every planned update is
  // either committed or aborted, so spec_commits + spec_aborts == updates
  // for that engine. ---
  /// Speculative updates whose footprints survived conflict resolution.
  std::uint64_t spec_commits = 0;
  /// Speculative updates rolled back and re-executed in a later round.
  std::uint64_t spec_aborts = 0;

  /// Fraction of speculative updates aborted (0.0 when none ran).
  [[nodiscard]] double abort_rate() const;

  /// Mean observed staleness in steps (0.0 when no writes were delayed).
  [[nodiscard]] double mean_staleness() const;

  /// Iterations that ran in push direction (sum over direction_push).
  [[nodiscard]] std::uint64_t push_iterations() const;

  /// Load-imbalance summary: max/mean over per_thread_work (falling back to
  /// per_thread_updates when no work counts were recorded). 1.0 = perfectly
  /// balanced; 1.0 is also returned when nothing was recorded at all.
  [[nodiscard]] double load_imbalance() const;
};

}  // namespace ndg
