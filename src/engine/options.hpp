#pragma once
// Common option/result types shared by all execution engines.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "atomics/access_policy.hpp"

namespace ndg {

struct EngineOptions {
  /// Number of OS threads (the paper's "participating processors" P).
  std::size_t num_threads = 1;
  /// Safety cap; engines report converged=false when they hit it.
  std::size_t max_iterations = 100000;
  /// Atomicity method for the nondeterministic engine (Section III).
  AtomicityMode mode = AtomicityMode::kRelaxed;
};

/// Potential-conflict counts observed by the ConflictTracer (lower bounds —
/// see conflict_tracer.hpp).
struct ConflictReport {
  std::uint64_t read_write = 0;
  std::uint64_t write_write = 0;

  [[nodiscard]] bool has_read_write() const { return read_write > 0; }
  [[nodiscard]] bool has_write_write() const { return write_write > 0; }
};

struct EngineResult {
  /// Iterations executed (the paper's N; I_0 is the initial state so the
  /// count here is the number of update rounds run).
  std::size_t iterations = 0;
  /// Total update-function invocations across all iterations and threads.
  std::uint64_t updates = 0;
  /// True if the frontier drained before max_iterations.
  bool converged = false;
  /// Wall-clock compute time (graph loading excluded, as in the paper).
  double seconds = 0.0;
  /// Filled only when a tracer was attached.
  ConflictReport conflicts;
  /// |S_n| for every executed iteration — the convergence curve. One entry
  /// per iteration; cheap enough to record unconditionally.
  std::vector<std::uint32_t> frontier_sizes;
};

}  // namespace ndg
