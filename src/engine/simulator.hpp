#pragma once
// Logical-processor simulator of nondeterministic execution.
//
// The paper's Section II defines nondeterminism abstractly: per-iteration
// absolute orders π(v), and partial orders between updates on P processors
// with a propagation delay d (Definitions 1–3):
//
//   f(v) ≺ f(u)  — same proc and π(v) < π(u), or different procs and
//                  π(u) − π(v) ≥ d:   f(u) observes f(v)'s writes;
//   f(v) ≻ f(u)  — symmetric;
//   f(v) ∥ f(u)  — different procs and |π(v) − π(u)| < d: neither observes
//                  the other; racing writes commit to ONE of the written
//                  values (Lemmas 1 & 2).
//
// This engine executes that model literally, on one host thread: the frontier
// is dispatched over P *logical* processors exactly as in Fig. 1, updates run
// in wave order, reads reconstruct the visible value from a per-edge write
// log using the rules above, and ∥ write-write races commit a seeded winner.
// Because the host hardware plays no role, the simulator (a) reproduces the
// paper's shape results on any machine — including this repo's 1-core CI
// host — and (b) makes convergence under nondeterminism a *testable*
// property: every seed is one adversarial schedule.
//
// With P = 1 (or d = 0) the model degenerates to deterministic Gauss–Seidel
// execution; a property test asserts bit-equality with run_deterministic.

#include <cstdint>
#include <vector>

#include "atomics/edge_data.hpp"
#include "engine/frontier.hpp"
#include "engine/options.hpp"
#include "engine/vertex_program.hpp"
#include "util/rng.hpp"
#include "util/thread_team.hpp"
#include "util/timer.hpp"

namespace ndg {

struct SimOptions {
  /// Logical processors P.
  std::size_t num_procs = 4;
  /// Propagation delay d, "the time (measured by the number of updates) for
  /// the result of an update to propagate from one thread to another".
  std::size_t delay = 4;
  /// Environmental noise: each cross-processor propagation draws a seeded
  /// per-(edge, iteration, writer, reader) effective delay in
  /// [max(1, delay - jitter), delay + jitter]. This models the paper's
  /// run-to-run schedule noise ("uncertainty on scheduling, random IRQs,
  /// memory stalls" — Section V-C): with jitter = 0 the schedule is one fixed
  /// interleaving; with jitter > 0 each seed is a different noisy schedule,
  /// which is what makes fixed-point results vary between runs.
  std::size_t delay_jitter = 0;
  /// Resolves ∥ write-write races and the delay jitter; each seed is one
  /// nondeterministic schedule.
  std::uint64_t seed = 1;
  std::size_t max_iterations = 100000;
};

struct SimResult {
  std::size_t iterations = 0;
  std::uint64_t updates = 0;
  bool converged = false;
  double seconds = 0.0;
  /// Reads that overlapped (∥) an earlier-wave write they could not observe.
  std::uint64_t rw_overlaps = 0;
  /// Write pairs to the same edge within each other's ∥ window.
  std::uint64_t ww_overlaps = 0;
  /// Makespan proxy: total update waves executed, Σ_n ⌈|S_n| / P⌉. With all
  /// update tasks costing one slot, this is the parallel execution time of
  /// the schedule on P logical processors — the host-independent quantity
  /// behind Figure 3's scaling curves (updates / wave_slots ≈ achieved
  /// parallelism).
  std::uint64_t wave_slots = 0;
  /// |S_n| per executed iteration — the convergence curve.
  std::vector<std::uint64_t> frontier_sizes;
};

namespace detail {

/// Non-templated simulation machinery operating on raw 8-byte edge slots.
class SimMachine {
 public:
  SimMachine(std::atomic<std::uint64_t>* slots, EdgeId num_edges,
             std::size_t delay, std::size_t delay_jitter, std::uint64_t seed);

  void begin_iteration(std::uint32_t iter) { iter_ = iter; }

  [[nodiscard]] std::uint64_t read(EdgeId e, std::uint32_t proc, std::uint32_t slot);
  void write(EdgeId e, std::uint64_t value, std::uint32_t proc, std::uint32_t slot);

  /// Commits each touched edge to its winning write (Lemmas 1 & 2) and clears
  /// the iteration's log.
  void commit();

  [[nodiscard]] std::uint64_t rw_overlaps() const { return rw_overlaps_; }
  [[nodiscard]] std::uint64_t ww_overlaps() const { return ww_overlaps_; }

 private:
  struct WriteRec {
    std::uint64_t value = 0;
    std::uint32_t slot = 0;
    std::uint32_t proc = 0;
  };
  struct EdgeLog {
    std::uint32_t epoch = ~0u;  // iteration the recs belong to
    std::uint8_t count = 0;
    WriteRec recs[2];
  };

  [[nodiscard]] bool visible(EdgeId e, const WriteRec& w, std::uint32_t proc,
                             std::uint32_t slot) const;
  /// The noisy cross-processor delay for one (edge, writer, reader) triple.
  [[nodiscard]] std::size_t effective_delay(EdgeId e, const WriteRec& w,
                                            std::uint32_t proc,
                                            std::uint32_t slot) const;
  /// Seeded coin for ∥ ties: true selects candidate `a` over `b`.
  [[nodiscard]] bool tie_pick_first(EdgeId e, const WriteRec& a,
                                    const WriteRec& b) const;

  std::atomic<std::uint64_t>* slots_;
  std::vector<EdgeLog> logs_;
  std::vector<EdgeId> touched_;
  std::size_t delay_;
  std::size_t delay_jitter_;
  std::uint64_t seed_;
  std::uint32_t iter_ = 0;
  std::uint64_t rw_overlaps_ = 0;
  std::uint64_t ww_overlaps_ = 0;
};

/// Update context backed by the simulator's visibility rules.
template <EdgePod ED>
class SimContext {
 public:
  SimContext(const Graph& g, SimMachine& machine, Frontier& frontier)
      : g_(&g), machine_(&machine), frontier_(&frontier) {}

  void begin(VertexId v, std::size_t iteration, std::uint32_t proc,
             std::uint32_t slot) {
    v_ = v;
    iter_ = iteration;
    proc_ = proc;
    slot_ = slot;
  }

  [[nodiscard]] VertexId vertex() const { return v_; }
  [[nodiscard]] std::size_t iteration() const { return iter_; }
  [[nodiscard]] const Graph& graph() const { return *g_; }

  [[nodiscard]] std::span<const InEdge> in_edges() const {
    return g_->in_edges(v_);
  }
  [[nodiscard]] std::span<const VertexId> out_neighbors() const {
    return g_->out_neighbors(v_);
  }
  [[nodiscard]] EdgeId out_edge_id(std::size_t k) const {
    return g_->out_edges_begin(v_) + k;
  }

  [[nodiscard]] ED read(EdgeId e) {
    return detail::from_slot<ED>(machine_->read(e, proc_, slot_));
  }

  void write(EdgeId e, VertexId other_endpoint, ED value) {
    machine_->write(e, detail::to_slot(value), proc_, slot_);
    frontier_->schedule(other_endpoint);
  }

  void write_silent(EdgeId e, ED value) {
    machine_->write(e, detail::to_slot(value), proc_, slot_);
  }

  /// Simulator RMWs are RACY (a visible read followed by a logged write):
  /// the Section II model has no atomic compound operations — single reads
  /// and writes are the only atoms (Section III). Algorithms relying on
  /// genuine atomic RMW (push mode) must be validated on the threaded
  /// engines, whose policies provide real CAS.
  [[nodiscard]] ED exchange(EdgeId e, ED value) {
    const ED old = detail::from_slot<ED>(machine_->read(e, proc_, slot_));
    machine_->write(e, detail::to_slot(value), proc_, slot_);
    return old;
  }

  template <typename Fn>
  void accumulate(EdgeId e, VertexId other_endpoint, Fn fn) {
    const ED old = detail::from_slot<ED>(machine_->read(e, proc_, slot_));
    machine_->write(e, detail::to_slot(fn(old)), proc_, slot_);
    frontier_->schedule(other_endpoint);
  }

  void schedule(VertexId u) { frontier_->schedule(u); }

 private:
  const Graph* g_;
  SimMachine* machine_;
  Frontier* frontier_;
  VertexId v_ = kInvalidVertex;
  std::size_t iter_ = 0;
  std::uint32_t proc_ = 0;
  std::uint32_t slot_ = 0;
};

}  // namespace detail

template <VertexProgram Program>
SimResult run_simulated(const Graph& g, Program& prog,
                        EdgeDataArray<typename Program::EdgeData>& edges,
                        const SimOptions& opts) {
  Timer timer;
  Frontier frontier(g.num_vertices());
  frontier.seed(prog.initial_frontier(g));

  // The simulator owns the slot array for the whole run and models the
  // paper's atomicity assumption itself.  ndg-lint: allow(raw-slots)
  detail::SimMachine machine(edges.slots(), edges.size(), opts.delay,
                             opts.delay_jitter, opts.seed);
  detail::SimContext<typename Program::EdgeData> ctx(g, machine, frontier);

  const std::size_t procs = std::max<std::size_t>(1, opts.num_procs);
  SimResult result;

  while (!frontier.empty() && result.iterations < opts.max_iterations) {
    const auto& cur = frontier.current();
    result.frontier_sizes.push_back(cur.size());
    machine.begin_iteration(static_cast<std::uint32_t>(result.iterations));

    // Fig. 1 dispatch: proc p owns the contiguous block of the ascending
    // frontier list; π(v) is the position inside the block. Updates execute
    // in waves: all procs run their slot-k update "simultaneously".
    std::size_t max_block = 0;
    for (std::size_t p = 0; p < procs; ++p) {
      const auto [b, e] = static_block(cur.size(), procs, p);
      max_block = std::max(max_block, e - b);
    }
    result.wave_slots += max_block;
    for (std::size_t slot = 0; slot < max_block; ++slot) {
      for (std::size_t p = 0; p < procs; ++p) {
        const auto [b, e] = static_block(cur.size(), procs, p);
        if (b + slot >= e) continue;
        const VertexId v = cur[b + slot];
        ctx.begin(v, result.iterations, static_cast<std::uint32_t>(p),
                  static_cast<std::uint32_t>(slot));
        prog.update(v, ctx);
        ++result.updates;
      }
    }

    machine.commit();
    frontier.advance();
    ++result.iterations;
  }

  result.converged = frontier.empty();
  result.seconds = timer.seconds();
  result.rw_overlaps = machine.rw_overlaps();
  result.ww_overlaps = machine.ww_overlaps();
  return result;
}

}  // namespace ndg
