#pragma once
// Nondeterministic execution ("NE"): the paper's system model, Section II.
//
//   * The chosen updates S_n are dispatched over P persistent threads by a
//     pluggable Worklist (src/sched/). The default, StaticBlockWorklist, is
//     the paper's dispatch exactly: a static block partition of the ascending
//     frontier list (Fig. 1 — "the static scheduling by the OpenMP runtime
//     system"), each thread executing its assigned updates small-label-first.
//     StealingWorklist and BucketWorklist realise other schedules π(v) the
//     paper's analysis is parameterised by (docs/SCHEDULERS.md).
//   * Updates become visible immediately (asynchronous / Gauss–Seidel model);
//     concurrent updates race on shared edge data, protected only by the
//     per-access atomicity policy (Section III).
//   * A barrier separates iterations ("the synchronous implementation of the
//     asynchronous model"), so edge values commit to one predictable value at
//     each iteration boundary.
//
// The interleaving between threads — and therefore the execution path of the
// algorithm — is decided by the OS scheduler and the cache-coherence fabric,
// not by the engine: that is the nondeterminism under study. A work-stealing
// or priority schedule widens the set of reachable interleavings; the
// eligibility theorems are schedule-oblivious, which is exactly why swapping
// the worklist is legal for eligible algorithms.

#include <atomic>

#include "atomics/access_policy.hpp"
#include "engine/options.hpp"
#include "engine/scheduler_dispatch.hpp"
#include "engine/update_context.hpp"
#include "engine/vertex_program.hpp"
#include "perf/hub_gather.hpp"
#include "util/barrier.hpp"
#include "util/thread_team.hpp"
#include "util/timer.hpp"

namespace ndg {

namespace detail {

template <typename GraphT, VertexProgram Program, typename Policy, Worklist WL>
EngineResult run_nondet_impl(const GraphT& g, Program& prog,
                             EdgeDataArray<typename Program::EdgeData>& edges,
                             Policy policy, const EngineOptions& opts,
                             std::vector<VertexId> seeds) {
  Timer timer;
  Frontier frontier(g.num_vertices(), opts.frontier_policy,
                    opts.frontier_dense_divisor);
  frontier.seed(std::move(seeds));

  const std::size_t nt = std::max<std::size_t>(1, opts.num_threads);
  SpinBarrier barrier(nt);
  WL worklist = make_worklist<WL>(nt, opts);
  std::vector<std::uint64_t> per_updates(nt, 0);
  std::vector<std::uint64_t> per_work(nt, 0);
  std::vector<std::uint64_t> per_splits(nt, 0);
  std::vector<std::uint64_t> per_chunks(nt, 0);
  std::size_t iterations = 0;  // written by thread 0 between barriers only
  std::vector<std::uint64_t> frontier_sizes;
  std::vector<std::uint8_t> frontier_dense;

  // Hub splitting needs a shared worklist — chunk tokens must be poppable by
  // any thread — and a program declaring the gather decomposition. Under
  // static-block dispatch there is no queue to co-schedule chunks on, so the
  // knob is silently inert there (docs/PERF.md). It is also static-CSR-only:
  // HubTable chunk geometry is baked from Graph offsets, so dynamic views
  // run whole-vertex updates (hub splitting over mutable adjacency is an
  // open item in ROADMAP.md).
  constexpr bool kHubCapable = std::is_same_v<GraphT, Graph> &&
                               WL::kShared && EdgeParallelGatherProgram<Program>;
  using GD = typename detail::GatherDataOf<Program>::type;
  perf::HubTable hub_table;
  perf::HubGatherState<GD> hub_state;
  if constexpr (kHubCapable) {
    if (opts.hub_threshold > 0) {
      hub_table =
          perf::HubTable(g, opts.hub_threshold, opts.hub_chunk_edges);
      hub_state = perf::HubGatherState<GD>(hub_table);
    }
  }
  const bool hubs_on = !hub_table.empty();

  run_team(nt, [&](std::size_t tid) {
    bool sense = false;
    UpdateContext<typename Program::EdgeData, Policy, GraphT> ctx(
        g, edges, policy, frontier);
    std::uint64_t local_updates = 0;
    std::uint64_t local_work = 0;
    std::uint64_t local_splits = 0;
    std::uint64_t local_chunks = 0;
    for (std::size_t iter = 0;; ++iter) {
      // All threads observe the same frontier state here: thread 0 mutated it
      // strictly between the two barriers of the previous round.
      if (frontier.empty() || iter >= opts.max_iterations) break;

      // Refill: every thread feeds its Fig. 1 static slice of S_n into the
      // worklist. For StaticBlockWorklist that IS the final schedule; the
      // shared worklists rebalance (stealing) or reorder (buckets) from this
      // seed. Priorities are read here, between barriers, so the program
      // state they derive from is quiescent. Hubs enter as chunk tokens (all
      // at the hub's priority) instead of one monolithic update.
      const auto feed = [&](VertexId v) {
        if constexpr (kHubCapable) {
          if (hubs_on && hub_table.is_hub(v)) {
            const std::uint32_t h = hub_table.hub_index(v);
            const std::uint32_t nchunks = hub_table.num_chunks(h);
            const std::uint64_t prio = scheduling_priority(prog, v);
            hub_state.arm(h, nchunks);
            const std::uint32_t base = hub_table.chunk_begin(h);
            for (std::uint32_t c = 0; c < nchunks; ++c) {
              worklist.push(tid, perf::make_chunk_token(base + c), prio);
            }
            ++local_splits;
            local_chunks += nchunks;
            return;
          }
        }
        worklist.push(tid, v, scheduling_priority(prog, v));
      };
      if (frontier.dense()) {
        // Dense S_n: partition 64-vertex label blocks (bitmap words) instead
        // of list slots — same static-block shape, same ascending-label order
        // within and across threads, no materialized list.
        const auto [wb, we] = static_block(frontier.num_words(), nt, tid);
        frontier.for_each_in_words(
            wb, we, [&](std::size_t v) { feed(static_cast<VertexId>(v)); });
      } else {
        const auto& cur = frontier.current();
        const auto [begin, end] = static_block(cur.size(), nt, tid);
        for (std::size_t i = begin; i < end; ++i) feed(cur[i]);
      }
      worklist.publish(tid);
      if constexpr (WL::kShared) {
        // Shared worklists: all pushes must be visible before anyone treats
        // an empty scan as end-of-iteration.
        barrier.arrive_and_wait(sense);
      }

      VertexId v;
      while (worklist.try_pop(tid, v)) {
        if constexpr (kHubCapable) {
          if (perf::is_chunk_token(v)) {
            const std::uint32_t chunk = perf::chunk_of_token(v);
            const auto range = hub_table.chunk_range(g, chunk);
            const auto in = g.in_edges(range.v);
            ctx.begin(range.v, iter);
            GD acc = Program::gather_identity();
            for (std::size_t i = range.begin; i < range.end; ++i) {
              if (i + perf::kGatherPrefetchDistance < range.end) {
                prefetch_edge(ctx, in[i + perf::kGatherPrefetchDistance].id);
              }
              acc = Program::combine(acc, prog.gather_edge(in[i], ctx));
            }
            hub_state.store_partial(policy, chunk, acc);
            local_work += range.end - range.begin;
            const std::uint32_t h = hub_table.hub_index(range.v);
            if (hub_state.finish_chunk(h)) {
              // Last finisher: combine all partials (read back through the
              // same policy) and run the compute+scatter half.
              GD total = Program::gather_identity();
              const std::uint32_t base = hub_table.chunk_begin(h);
              const std::uint32_t n = hub_table.num_chunks(h);
              for (std::uint32_t c = 0; c < n; ++c) {
                total = Program::combine(
                    total, hub_state.read_partial(policy, base + c));
              }
              prog.apply(range.v, total, ctx);
              ++local_updates;
              local_work += g.out_neighbors(range.v).size();
            }
            continue;
          }
        }
        ctx.begin(v, iter);
        prog.update(v, ctx);
        ++local_updates;
        local_work += g.in_edges(v).size() + g.out_neighbors(v).size();
      }

      barrier.arrive_and_wait(sense);
      if (tid == 0) {
        frontier_sizes.push_back(frontier.size());
        frontier_dense.push_back(frontier.dense() ? 1 : 0);
        frontier.advance();
        iterations = iter + 1;
      }
      barrier.arrive_and_wait(sense);
    }
    per_updates[tid] = local_updates;  // exclusive slot; read after join
    per_work[tid] = local_work;
    per_splits[tid] = local_splits;
    per_chunks[tid] = local_chunks;
  });

  EngineResult result;
  result.iterations = iterations;
  std::uint64_t total_updates = 0;
  for (const std::uint64_t u : per_updates) total_updates += u;
  result.updates = total_updates;
  result.converged = frontier.empty();
  result.seconds = timer.seconds();
  result.frontier_sizes = std::move(frontier_sizes);
  result.frontier_dense = std::move(frontier_dense);
  result.per_thread_updates = std::move(per_updates);
  result.per_thread_work = std::move(per_work);
  for (const std::uint64_t s : per_splits) result.hub_splits += s;
  for (const std::uint64_t c : per_chunks) result.hub_chunks += c;
  const WorklistStats wl_stats = worklist.stats();
  result.steals = wl_stats.steals;
  result.steal_attempts = wl_stats.steal_attempts;
  return result;
}

template <typename GraphT, VertexProgram Program, typename Policy>
EngineResult run_nondet_sched(const GraphT& g, Program& prog,
                              EdgeDataArray<typename Program::EdgeData>& edges,
                              Policy policy, const EngineOptions& opts,
                              std::vector<VertexId> seeds) {
  return dispatch_scheduler(opts.scheduler, [&](auto wl_tag) {
    using WL = typename decltype(wl_tag)::type;
    return run_nondet_impl<GraphT, Program, Policy, WL>(g, prog, edges, policy,
                                                        opts, std::move(seeds));
  });
}

template <typename GraphT, VertexProgram Program>
EngineResult run_nondet_mode(const GraphT& g, Program& prog,
                             EdgeDataArray<typename Program::EdgeData>& edges,
                             const EngineOptions& opts,
                             std::vector<VertexId> seeds) {
  switch (opts.mode) {
    case AtomicityMode::kLocked: {
      EdgeLockTable locks(edges.size());
      return run_nondet_sched(g, prog, edges, LockedAccess{&locks}, opts,
                              std::move(seeds));
    }
    case AtomicityMode::kAligned:
      return run_nondet_sched(g, prog, edges, AlignedAccess{}, opts,
                              std::move(seeds));
    case AtomicityMode::kRelaxed:
      return run_nondet_sched(g, prog, edges, RelaxedAtomicAccess{}, opts,
                              std::move(seeds));
    case AtomicityMode::kSeqCst:
      return run_nondet_sched(g, prog, edges, SeqCstAccess{}, opts,
                              std::move(seeds));
  }
  return {};
}

}  // namespace detail

/// Runs the nondeterministic engine with a caller-supplied access policy —
/// the extension point for custom policies (instrumented, fault-injecting,
/// experimental memory orders). The policy is copied into each worker's
/// context; share mutable state through pointers.
template <VertexProgram Program, typename Policy>
EngineResult run_nondeterministic_with_policy(
    const Graph& g, Program& prog,
    EdgeDataArray<typename Program::EdgeData>& edges, Policy policy,
    const EngineOptions& opts) {
  return detail::run_nondet_sched(g, prog, edges, policy, opts,
                                  prog.initial_frontier(g));
}

/// Warm-start entry point: runs the NE engine on any graph view from a
/// caller-supplied seed set (S_0 := seeds) over the CURRENT edge state —
/// edges is NOT re-initialized. This is how the incremental recompute driver
/// (src/dyn/incremental.hpp) resumes after a mutation batch: the affected
/// vertices become the first frontier and the algorithm converges from
/// whatever the previous epoch left in the edge array (docs/DYNAMIC.md for
/// why Theorems 1/2 license that). Duplicated/unsorted seeds are fine.
template <typename GraphT, VertexProgram Program>
EngineResult run_nondeterministic_from(
    const GraphT& g, Program& prog,
    EdgeDataArray<typename Program::EdgeData>& edges,
    std::vector<VertexId> seeds, const EngineOptions& opts) {
  return detail::run_nondet_mode(g, prog, edges, opts, std::move(seeds));
}

/// Runs the nondeterministic engine with the atomicity method selected in
/// opts.mode and the schedule selected in opts.scheduler. The per-edge lock
/// table for AtomicityMode::kLocked lives only for the duration of the run,
/// as in the paper's patched GraphChi.
template <VertexProgram Program>
EngineResult run_nondeterministic(const Graph& g, Program& prog,
                                  EdgeDataArray<typename Program::EdgeData>& edges,
                                  const EngineOptions& opts) {
  return detail::run_nondet_mode(g, prog, edges, opts,
                                 prog.initial_frontier(g));
}

}  // namespace ndg
