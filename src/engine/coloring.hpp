#pragma once
// Greedy vertex coloring of the conflict graph. Two updates conflict when
// their vertices are adjacent (they share an edge and hence its edge datum),
// so a proper coloring of the *undirected* view of G partitions every
// iteration's updates into conflict-free batches — the basis of the chromatic
// deterministic scheduler (Kaler et al., SPAA'14, the paper's ref. [10]).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ndg {

struct Coloring {
  std::vector<std::uint32_t> color;  // per vertex
  std::uint32_t num_colors = 0;
};

/// Greedy first-fit coloring in ascending label order. Uses at most
/// max_degree(undirected) + 1 colors.
Coloring greedy_color(const Graph& g);

/// Verifies that no two adjacent vertices share a color (test helper).
bool is_proper_coloring(const Graph& g, const Coloring& c);

}  // namespace ndg
