#include "engine/frontier.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ndg {

Frontier::Frontier(VertexId num_vertices) : next_(num_vertices) {}

void Frontier::seed(std::vector<VertexId> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()), vertices.end());
  for ([[maybe_unused]] const VertexId v : vertices) {
    NDG_ASSERT(v < next_.size());
  }
  current_ = std::move(vertices);
}

void Frontier::advance() {
  current_.clear();
  // AtomicBitset iterates set bits in ascending order, which gives the
  // small-label-first ordering for free.
  next_.for_each([this](std::size_t v) { current_.push_back(static_cast<VertexId>(v)); });
  next_.clear();
}

}  // namespace ndg
