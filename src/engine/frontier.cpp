#include "engine/frontier.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ndg {

Frontier::Frontier(VertexId num_vertices, FrontierPolicy policy,
                   std::size_t dense_divisor)
    : next_(num_vertices),
      policy_(policy),
      dense_divisor_(dense_divisor == 0 ? 1 : dense_divisor) {
  if (policy_ != FrontierPolicy::kSparse) bits_ = DenseBitset(num_vertices);
}

bool Frontier::want_dense(std::size_t count) const {
  switch (policy_) {
    case FrontierPolicy::kSparse:
      return false;
    case FrontierPolicy::kDense:
      return count > 0;
    case FrontierPolicy::kAuto:
      return count * dense_divisor_ > next_.size();
  }
  return false;
}

void Frontier::seed(std::vector<VertexId> vertices) {
  std::sort(vertices.begin(), vertices.end());
  vertices.erase(std::unique(vertices.begin(), vertices.end()), vertices.end());
  for ([[maybe_unused]] const VertexId v : vertices) {
    NDG_ASSERT(v < next_.size());
  }
  size_ = vertices.size();
  dense_ = want_dense(size_);
  if (dense_) {
    bits_.clear();
    for (const VertexId v : vertices) bits_.set(v);
    current_.clear();
  } else {
    current_ = std::move(vertices);
  }
}

void Frontier::advance() {
  size_ = next_.count();
  dense_ = want_dense(size_);
  if (dense_) {
    // Snapshot the atomic words into the plain bitmap so the sweep reads
    // non-atomic memory; next_ is then recycled for S_{n+2}.
    next_.snapshot_into(bits_);
    current_.clear();
  } else {
    current_.clear();
    // AtomicBitset iterates set bits in ascending order, which gives the
    // small-label-first ordering for free.
    next_.for_each(
        [this](std::size_t v) { current_.push_back(static_cast<VertexId>(v)); });
  }
  next_.clear();
}

void Frontier::collect_range(VertexId lo, VertexId hi,
                             std::vector<VertexId>& out) const {
  if (dense_) {
    bits_.for_each_in_range(lo, hi, [&out](std::size_t v) {
      out.push_back(static_cast<VertexId>(v));
    });
    return;
  }
  const auto first = std::lower_bound(current_.begin(), current_.end(), lo);
  const auto last = std::lower_bound(first, current_.end(), hi);
  out.insert(out.end(), first, last);
}

const char* to_string(FrontierPolicy policy) {
  switch (policy) {
    case FrontierPolicy::kSparse:
      return "sparse";
    case FrontierPolicy::kDense:
      return "dense";
    case FrontierPolicy::kAuto:
      return "auto";
  }
  return "?";
}

std::optional<FrontierPolicy> parse_frontier_policy(const std::string& name) {
  if (name == "sparse") return FrontierPolicy::kSparse;
  if (name == "dense") return FrontierPolicy::kDense;
  if (name == "auto") return FrontierPolicy::kAuto;
  return std::nullopt;
}

}  // namespace ndg
