#pragma once
// DirectionMode — what the caller asks the direction-optimizing engine
// (engine/direction.hpp) to do. Purely an engine vocabulary type: the
// analysis layer (analysis/directional_manifest.hpp) gates WHICH modes a
// program is statically allowed to run; the engine just executes whatever
// mode it is handed. Kept in its own header so options.hpp can carry the
// knob without pulling in the engine.

#include <cstdint>
#include <optional>
#include <string>

namespace ndg {

enum class DirectionMode : std::uint8_t {
  /// Every iteration gathers over own in-edges (the classic engines' shape).
  kPull = 0,
  /// Every iteration publishes over own out-edges via update_push.
  kPush = 1,
  /// Pick per iteration from the hybrid frontier's density signal: dense
  /// iterations pull, sparse iterations push (docs/PERF.md §5).
  kAuto = 2,
};

[[nodiscard]] const char* to_string(DirectionMode m);

/// Parses "pull" / "push" / "auto"; nullopt on anything else.
[[nodiscard]] std::optional<DirectionMode> parse_direction_mode(
    const std::string& s);

}  // namespace ndg
