#pragma once
// Direction-optimizing NE: the push/pull dispatch layer over the
// nondeterministic engine's iteration protocol (nondeterministic.hpp).
//
// Per iteration the engine runs every chosen update in ONE direction:
//   pull — prog.update(v, ctx), the classic own-in gather shape;
//   push — prog.update_push(v, ctx), the own-out atomic-RMW publish shape.
// Under kAuto the choice comes from the hybrid frontier's density signal:
// the same |S_n| * divisor > V test that flips the frontier representation
// (frontier.hpp) flips the direction — dense iterations pull (sequential
// in-edge scans, plain conditional writes), sparse iterations push (touch
// only the frontier's out-edges; docs/PERF.md §5). The decision is computed
// by every thread from the SAME quiescent frontier state between barriers,
// so all threads agree without extra synchronization, and thread 0 records
// it as per-iteration telemetry (EngineResult::direction_push).
//
// Deliberately NOT consulted here: the static direction verdicts. The engine
// layer sits below analysis (src/CMakeLists.txt layering), so eligibility
// gating lives with callers — assert_direction / assert_switchable at
// compile time, resolve_direction at runtime (ndg_cli). The one safety the
// engine enforces itself is structural: a program without update_push is
// pinned to pull whatever the requested mode. Hub-gather splitting is a
// pull-gather decomposition and does not compose with direction switching,
// so this engine runs whole-vertex updates only.

#include <atomic>

#include "atomics/access_policy.hpp"
#include "engine/options.hpp"
#include "engine/scheduler_dispatch.hpp"
#include "engine/update_context.hpp"
#include "engine/vertex_program.hpp"
#include "util/barrier.hpp"
#include "util/thread_team.hpp"
#include "util/timer.hpp"

namespace ndg {

/// A program exposing the push entry point the direction engine dispatches
/// to. The analysis-layer twin (PushCapableProgram, which also demands
/// kPushManifest) is what gates eligibility; this engine-layer concept only
/// cares that the call compiles.
template <typename Program, typename Ctx>
concept PushUpdatable = requires(Program p, VertexId v, Ctx& c) {
  p.update_push(v, c);
};

namespace detail {

/// The per-iteration decision, identical on every thread: pull-pinned modes
/// and push-incapable programs never push; kAuto pushes exactly on sparse
/// iterations.
[[nodiscard]] inline bool direction_wants_push(DirectionMode mode, bool dense,
                                               bool can_push) {
  switch (mode) {
    case DirectionMode::kPull:
      return false;
    case DirectionMode::kPush:
      return can_push;
    case DirectionMode::kAuto:
      return can_push && !dense;
  }
  return false;
}

template <typename GraphT, VertexProgram Program, typename Policy, Worklist WL>
EngineResult run_direction_impl(
    const GraphT& g, Program& prog,
    EdgeDataArray<typename Program::EdgeData>& edges, Policy policy,
    const EngineOptions& opts, std::vector<VertexId> seeds) {
  using Ctx = UpdateContext<typename Program::EdgeData, Policy, GraphT>;
  constexpr bool kHasPush = PushUpdatable<Program, Ctx>;

  Timer timer;
  Frontier frontier(g.num_vertices(), opts.frontier_policy,
                    opts.frontier_dense_divisor);
  frontier.seed(std::move(seeds));

  const std::size_t nt = std::max<std::size_t>(1, opts.num_threads);
  SpinBarrier barrier(nt);
  WL worklist = make_worklist<WL>(nt, opts);
  std::vector<std::uint64_t> per_updates(nt, 0);
  std::vector<std::uint64_t> per_work(nt, 0);
  std::size_t iterations = 0;  // written by thread 0 between barriers only
  std::vector<std::uint64_t> frontier_sizes;
  std::vector<std::uint8_t> frontier_dense;
  std::vector<std::uint8_t> direction_push;

  run_team(nt, [&](std::size_t tid) {
    bool sense = false;
    Ctx ctx(g, edges, policy, frontier);
    std::uint64_t local_updates = 0;
    std::uint64_t local_work = 0;
    for (std::size_t iter = 0;; ++iter) {
      // All threads observe the same frontier state here: thread 0 mutated it
      // strictly between the two barriers of the previous round.
      if (frontier.empty() || iter >= opts.max_iterations) break;

      // The direction decision reads only quiescent frontier state, so every
      // thread derives the same bit without communicating.
      const bool use_push =
          direction_wants_push(opts.direction, frontier.dense(), kHasPush);

      if (frontier.dense()) {
        const auto [wb, we] = static_block(frontier.num_words(), nt, tid);
        frontier.for_each_in_words(wb, we, [&](std::size_t v) {
          worklist.push(tid, static_cast<VertexId>(v),
                        scheduling_priority(prog, static_cast<VertexId>(v)));
        });
      } else {
        const auto& cur = frontier.current();
        const auto [begin, end] = static_block(cur.size(), nt, tid);
        for (std::size_t i = begin; i < end; ++i) {
          worklist.push(tid, cur[i], scheduling_priority(prog, cur[i]));
        }
      }
      worklist.publish(tid);
      if constexpr (WL::kShared) {
        barrier.arrive_and_wait(sense);
      }

      VertexId v;
      while (worklist.try_pop(tid, v)) {
        ctx.begin(v, iter);
        if constexpr (kHasPush) {
          if (use_push) {
            prog.update_push(v, ctx);
          } else {
            prog.update(v, ctx);
          }
        } else {
          prog.update(v, ctx);
        }
        ++local_updates;
        local_work += g.in_edges(v).size() + g.out_neighbors(v).size();
      }

      barrier.arrive_and_wait(sense);
      if (tid == 0) {
        frontier_sizes.push_back(frontier.size());
        frontier_dense.push_back(frontier.dense() ? 1 : 0);
        direction_push.push_back(use_push ? 1 : 0);
        frontier.advance();
        iterations = iter + 1;
      }
      barrier.arrive_and_wait(sense);
    }
    per_updates[tid] = local_updates;  // exclusive slot; read after join
    per_work[tid] = local_work;
  });

  EngineResult result;
  result.iterations = iterations;
  std::uint64_t total_updates = 0;
  for (const std::uint64_t u : per_updates) total_updates += u;
  result.updates = total_updates;
  result.converged = frontier.empty();
  result.seconds = timer.seconds();
  result.frontier_sizes = std::move(frontier_sizes);
  result.frontier_dense = std::move(frontier_dense);
  for (std::size_t i = 1; i < direction_push.size(); ++i) {
    if (direction_push[i] != direction_push[i - 1]) ++result.direction_switches;
  }
  result.direction_push = std::move(direction_push);
  result.per_thread_updates = std::move(per_updates);
  result.per_thread_work = std::move(per_work);
  const WorklistStats wl_stats = worklist.stats();
  result.steals = wl_stats.steals;
  result.steal_attempts = wl_stats.steal_attempts;
  return result;
}

template <typename GraphT, VertexProgram Program, typename Policy>
EngineResult run_direction_sched(
    const GraphT& g, Program& prog,
    EdgeDataArray<typename Program::EdgeData>& edges, Policy policy,
    const EngineOptions& opts, std::vector<VertexId> seeds) {
  return dispatch_scheduler(opts.scheduler, [&](auto wl_tag) {
    using WL = typename decltype(wl_tag)::type;
    return run_direction_impl<GraphT, Program, Policy, WL>(
        g, prog, edges, policy, opts, std::move(seeds));
  });
}

template <typename GraphT, VertexProgram Program>
EngineResult run_direction_mode(const GraphT& g, Program& prog,
                                EdgeDataArray<typename Program::EdgeData>& edges,
                                const EngineOptions& opts,
                                std::vector<VertexId> seeds) {
  switch (opts.mode) {
    case AtomicityMode::kLocked: {
      EdgeLockTable locks(edges.size());
      return run_direction_sched(g, prog, edges, LockedAccess{&locks}, opts,
                                 std::move(seeds));
    }
    case AtomicityMode::kAligned:
      return run_direction_sched(g, prog, edges, AlignedAccess{}, opts,
                                 std::move(seeds));
    case AtomicityMode::kRelaxed:
      return run_direction_sched(g, prog, edges, RelaxedAtomicAccess{}, opts,
                                 std::move(seeds));
    case AtomicityMode::kSeqCst:
      return run_direction_sched(g, prog, edges, SeqCstAccess{}, opts,
                                 std::move(seeds));
  }
  return {};
}

}  // namespace detail

/// Runs the direction-optimizing NE engine with opts.direction deciding the
/// per-iteration pull/push dispatch. Callers gate opts.direction through the
/// static verdicts first (analysis/directional_manifest.hpp).
template <VertexProgram Program>
EngineResult run_direction_optimizing(
    const Graph& g, Program& prog,
    EdgeDataArray<typename Program::EdgeData>& edges,
    const EngineOptions& opts) {
  return detail::run_direction_mode(g, prog, edges, opts,
                                    prog.initial_frontier(g));
}

}  // namespace ndg
