#pragma once
// Pure asynchronous execution — no barriers at all (the paper's §VII future
// work: "extending the applicability of results in this paper to more
// scenarios, such as pure asynchronous model").
//
// Threads continuously sweep a shared active set, claim vertices, and run
// their updates; scheduling re-activates vertices immediately (there is no
// "next iteration" — the iteration structure of Section II dissolves). The
// engine terminates at global quiescence: no vertex active and no update in
// flight, tracked by a single pending counter
//
//     pending = |active set| + updates in flight,
//
// incremented by every 0->1 activation and decremented when a claimed
// update finishes. The visibility edge "write the edge, then schedule the
// endpoint" is a release/acquire pair on the active-set bit (see
// AtomicBitset::set/clear_bit), so a claimed update always observes the
// write that scheduled it — the minimum needed for liveness; everything
// else is exactly as racy as the barriered nondeterministic engine.
//
// GRACE (CIDR'13, the paper's ref. [13]) showed the barriered implementation
// has "comparable runtime to those of pure asynchronous model"; this engine
// makes that claim checkable (bench/ablation_pure_async).

#include <atomic>

#include "atomics/access_policy.hpp"
#include "engine/observer.hpp"
#include "engine/options.hpp"
#include "engine/vertex_program.hpp"
#include "util/bitset.hpp"
#include "util/thread_team.hpp"
#include "util/timer.hpp"

namespace ndg {

namespace detail {

/// Scheduling surface shared by the async workers.
class AsyncActiveSet {
 public:
  explicit AsyncActiveSet(VertexId num_vertices) : bits_(num_vertices) {}

  void schedule(VertexId v) {
    if (bits_.set(v)) pending_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Claims v if active; the claimer must call finished() after the update.
  bool claim(VertexId v) { return bits_.clear_bit(v); }

  void finished() { pending_.fetch_sub(1, std::memory_order_acq_rel); }

  [[nodiscard]] bool quiescent() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }

  [[nodiscard]] bool maybe_active(VertexId v) const { return bits_.test(v); }

 private:
  AtomicBitset bits_;
  std::atomic<std::uint64_t> pending_{0};
};

/// Update context for the pure-async engine: same verbs as UpdateContext but
/// scheduling goes to the live active set (no iteration numbers exist; the
/// reported iteration is the executing thread's sweep count).
template <EdgePod ED, typename Policy>
class AsyncContext {
 public:
  using EdgeData = ED;

  AsyncContext(const Graph& g, EdgeDataArray<ED>& edges, Policy policy,
               AsyncActiveSet& active)
      : g_(&g), edges_(&edges), policy_(policy), active_(&active) {}

  void begin(VertexId v, std::size_t sweep) {
    v_ = v;
    sweep_ = static_cast<std::uint32_t>(sweep);
  }

  [[nodiscard]] VertexId vertex() const { return v_; }
  [[nodiscard]] std::size_t iteration() const { return sweep_; }
  [[nodiscard]] const Graph& graph() const { return *g_; }

  [[nodiscard]] std::span<const InEdge> in_edges() const {
    return g_->in_edges(v_);
  }
  [[nodiscard]] std::span<const VertexId> out_neighbors() const {
    return g_->out_neighbors(v_);
  }
  [[nodiscard]] EdgeId out_edge_id(std::size_t k) const {
    return g_->out_edges_begin(v_) + k;
  }

  [[nodiscard]] ED read(EdgeId e) { return policy_.read(*edges_, e); }

  void write(EdgeId e, VertexId other_endpoint, ED value) {
    policy_.write(*edges_, e, value);
    active_->schedule(other_endpoint);
  }

  void write_silent(EdgeId e, ED value) { policy_.write(*edges_, e, value); }

  [[nodiscard]] ED exchange(EdgeId e, ED value) {
    return policy_.exchange(*edges_, e, value);
  }

  template <typename Fn>
  void accumulate(EdgeId e, VertexId other_endpoint, Fn fn) {
    policy_.accumulate(*edges_, e, fn);
    active_->schedule(other_endpoint);
  }

  void schedule(VertexId u) { active_->schedule(u); }

 private:
  const Graph* g_;
  EdgeDataArray<ED>* edges_;
  Policy policy_;
  AsyncActiveSet* active_;
  VertexId v_ = kInvalidVertex;
  std::uint32_t sweep_ = 0;
};

template <VertexProgram Program, typename Policy>
EngineResult run_pure_async_impl(const Graph& g, Program& prog,
                                 EdgeDataArray<typename Program::EdgeData>& edges,
                                 Policy policy, const EngineOptions& opts) {
  Timer timer;
  AsyncActiveSet active(g.num_vertices());
  for (const VertexId v : prog.initial_frontier(g)) active.schedule(v);

  const std::size_t nt = std::max<std::size_t>(1, opts.num_threads);
  std::atomic<std::uint64_t> total_updates{0};
  std::atomic<std::uint64_t> total_sweeps{0};
  // Update cap standing in for max_iterations: |V| * max_iterations matches
  // the barriered engines' worst-case work budget.
  const std::uint64_t update_cap =
      static_cast<std::uint64_t>(opts.max_iterations) *
      std::max<std::uint64_t>(1, g.num_vertices());
  std::atomic<bool> capped{false};

  run_team(nt, [&](std::size_t tid) {
    AsyncContext<typename Program::EdgeData, Policy> ctx(g, edges, policy,
                                                         active);
    std::uint64_t local_updates = 0;
    std::size_t sweep = 0;
    const VertexId n = g.num_vertices();
    const VertexId start =
        static_cast<VertexId>(static_block(n, nt, tid).begin);

    while (!active.quiescent() && !capped.load(std::memory_order_relaxed)) {
      // Sweep the whole vertex range starting at this thread's block, so
      // threads spread out instead of contending on the same low labels.
      for (VertexId i = 0; i < n; ++i) {
        const VertexId v = static_cast<VertexId>((start + i) % n);
        if (!active.maybe_active(v)) continue;
        if (!active.claim(v)) continue;
        ctx.begin(v, sweep);
        prog.update(v, ctx);
        active.finished();
        if (++local_updates % 4096 == 0 &&
            total_updates.load(std::memory_order_relaxed) + local_updates >
                update_cap) {
          capped.store(true, std::memory_order_relaxed);
          break;
        }
      }
      ++sweep;
    }
    total_updates.fetch_add(local_updates, std::memory_order_relaxed);
    total_sweeps.fetch_add(sweep, std::memory_order_relaxed);
  });

  EngineResult result;
  result.iterations = total_sweeps.load() / nt;  // mean sweeps per thread
  result.updates = total_updates.load();
  result.converged = active.quiescent() && !capped.load();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace detail

/// Pure asynchronous execution with the atomicity method from opts.mode.
template <VertexProgram Program>
EngineResult run_pure_async(const Graph& g, Program& prog,
                            EdgeDataArray<typename Program::EdgeData>& edges,
                            const EngineOptions& opts) {
  switch (opts.mode) {
    case AtomicityMode::kLocked: {
      EdgeLockTable locks(edges.size());
      return detail::run_pure_async_impl(g, prog, edges, LockedAccess{&locks},
                                         opts);
    }
    case AtomicityMode::kAligned:
      return detail::run_pure_async_impl(g, prog, edges, AlignedAccess{}, opts);
    case AtomicityMode::kRelaxed:
      return detail::run_pure_async_impl(g, prog, edges, RelaxedAtomicAccess{},
                                         opts);
    case AtomicityMode::kSeqCst:
      return detail::run_pure_async_impl(g, prog, edges, SeqCstAccess{}, opts);
  }
  return {};
}

}  // namespace ndg
