#pragma once
// Pure asynchronous execution — no barriers at all (the paper's §VII future
// work: "extending the applicability of results in this paper to more
// scenarios, such as pure asynchronous model").
//
// Threads claim active vertices and run their updates; scheduling
// re-activates vertices immediately (there is no "next iteration" — the
// iteration structure of Section II dissolves). How a thread finds its next
// vertex is the pluggable part (opts.scheduler, docs/SCHEDULERS.md):
//
//   kStaticBlock — the original behaviour: continuously sweep the shared
//                  active bitset, each thread starting at its static block;
//   kStealing    — activations are pushed to the activating thread's local
//                  queue and rebalanced by randomized chunk stealing;
//   kBucket      — activations carry a program priority and threads drain
//                  the lowest non-empty bucket (delta-stepping style).
//
// The engine terminates at global quiescence: no vertex active and no update
// in flight, tracked by a single pending counter
//
//     pending = |active set| + updates in flight,
//
// incremented by every 0->1 activation and decremented when a claimed
// update finishes. The visibility edge "write the edge, then schedule the
// endpoint" is a release/acquire pair on the active-set bit (see
// AtomicBitset::set/clear_bit), so a claimed update always observes the
// write that scheduled it.
//
// A second per-vertex bit (`running`) makes claimed updates EXCLUSIVE: if
// f(v) is still executing when a fresh activation of v is claimed, the
// claimer re-activates v and moves on instead of running f(v) concurrently
// with itself. Updates of the same vertex are therefore serialized (with
// acquire/release pairing on the running bit), so per-vertex program state
// needs no atomics — only the *edge* accesses stay as racy as the atomicity
// policy allows, exactly the racy surface the paper studies. This is also
// what lets the scheduler subsystem run under ThreadSanitizer.
//
// GRACE (CIDR'13, the paper's ref. [13]) showed the barriered implementation
// has "comparable runtime to those of pure asynchronous model"; this engine
// makes that claim checkable (bench/ablation_pure_async).

#include <atomic>
#include <thread>

#include "atomics/access_policy.hpp"
#include "engine/observer.hpp"
#include "engine/options.hpp"
#include "engine/scheduler_dispatch.hpp"
#include "engine/vertex_program.hpp"
#include "perf/hub_gather.hpp"
#include "perf/prefetch.hpp"
#include "util/bitset.hpp"
#include "util/thread_team.hpp"
#include "util/timer.hpp"

namespace ndg {

namespace detail {

/// Scheduling surface shared by the async workers: the active/running bits
/// and the quiescence counter. Queue-driven schedulers layer a worklist on
/// top (AsyncWorklistView below).
class AsyncActiveSet {
 public:
  explicit AsyncActiveSet(VertexId num_vertices)
      : bits_(num_vertices), running_(num_vertices) {}

  /// Activates v; returns true on the 0->1 transition (the caller of a
  /// queue-driven engine must then enqueue v exactly once).
  bool try_activate(VertexId v) {
    if (!bits_.set(v)) return false;
    pending_.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }

  void schedule(VertexId v) { (void)try_activate(v); }

  /// Claims v if active; the claimer must call finished() after the update.
  bool claim(VertexId v) { return bits_.clear_bit(v); }

  /// Exclusivity lock around f(v): begin_update's 0->1 win acquires, and
  /// end_update releases, so consecutive updates of v are ordered even
  /// when run by different threads.
  bool begin_update(VertexId v) { return running_.set(v); }
  void end_update(VertexId v) { running_.clear_bit(v); }

  void finished() { pending_.fetch_sub(1, std::memory_order_acq_rel); }

  [[nodiscard]] bool quiescent() const {
    return pending_.load(std::memory_order_acquire) == 0;
  }

  [[nodiscard]] bool maybe_active(VertexId v) const { return bits_.test(v); }

 private:
  AtomicBitset bits_;
  AtomicBitset running_;  // v's update is in flight
  std::atomic<std::uint64_t> pending_{0};
};

/// Scheduler view for the sweep engine: activations only touch the bitset.
class AsyncSweepView {
 public:
  explicit AsyncSweepView(AsyncActiveSet& active) : active_(&active) {}
  void schedule(VertexId v) { active_->schedule(v); }

 private:
  AsyncActiveSet* active_;
};

/// Scheduler view for the queue-driven engines: one instance per worker
/// thread; a won activation is pushed to this thread's queue with the
/// program's current priority.
template <Worklist WL, typename Program>
class AsyncWorklistView {
 public:
  AsyncWorklistView(AsyncActiveSet& active, WL& wl, const Program& prog,
                    std::size_t tid)
      : active_(&active), wl_(&wl), prog_(&prog), tid_(tid) {}

  void schedule(VertexId v) {
    if (active_->try_activate(v)) {
      wl_->push(tid_, v, scheduling_priority(*prog_, v));
    }
  }

 private:
  AsyncActiveSet* active_;
  WL* wl_;
  const Program* prog_;
  std::size_t tid_;
};

/// Update context for the pure-async engine: same verbs as UpdateContext but
/// scheduling goes to the live scheduler view (no iteration numbers exist;
/// the reported iteration is the executing thread's sweep count).
template <EdgePod ED, typename Policy, typename Sched, typename GraphT = Graph>
class AsyncContext {
 public:
  using EdgeData = ED;

  AsyncContext(const GraphT& g, EdgeDataArray<ED>& edges, Policy policy,
               Sched sched)
      : g_(&g), edges_(&edges), policy_(policy), sched_(sched) {}

  void begin(VertexId v, std::size_t sweep) {
    v_ = v;
    sweep_ = static_cast<std::uint32_t>(sweep);
    // Manifest-enforcing policies track the vertex under update (see
    // engine/update_context.hpp begin()).
    if constexpr (requires(Policy& p) { p.begin_update(v); }) {
      policy_.begin_update(v);
    }
  }

  [[nodiscard]] VertexId vertex() const { return v_; }
  [[nodiscard]] std::size_t iteration() const { return sweep_; }
  [[nodiscard]] const GraphT& graph() const { return *g_; }

  [[nodiscard]] std::span<const InEdge> in_edges() const {
    return g_->in_edges(v_);
  }
  [[nodiscard]] std::span<const VertexId> out_neighbors() const {
    return g_->out_neighbors(v_);
  }
  [[nodiscard]] EdgeId out_edge_id(std::size_t k) const {
    return g_->out_edge_id(v_, k);
  }

  [[nodiscard]] ED read(EdgeId e) { return policy_.read(*edges_, e); }

  /// Cache hint for an upcoming read(e) (perf/prefetch.hpp). Address-only
  /// slot use, no datum observed.  ndg-lint: allow(raw-slots)
  void prefetch(EdgeId e) const { perf::prefetch_read(edges_->slots() + e); }

  void write(EdgeId e, VertexId other_endpoint, ED value) {
    policy_.write(*edges_, e, value);
    sched_.schedule(other_endpoint);
  }

  void write_silent(EdgeId e, ED value) { policy_.write(*edges_, e, value); }

  [[nodiscard]] ED exchange(EdgeId e, ED value) {
    return policy_.exchange(*edges_, e, value);
  }

  template <typename Fn>
  void accumulate(EdgeId e, VertexId other_endpoint, Fn fn) {
    policy_.accumulate(*edges_, e, fn);
    sched_.schedule(other_endpoint);
  }

  void schedule(VertexId u) { sched_.schedule(u); }

 private:
  const GraphT* g_;
  EdgeDataArray<ED>* edges_;
  Policy policy_;
  Sched sched_;
  VertexId v_ = kInvalidVertex;
  std::uint32_t sweep_ = 0;
};

/// Work accounting shared by both async loop shapes.
struct AsyncWorkerTotals {
  std::uint64_t updates = 0;
  std::uint64_t work = 0;
  std::uint64_t sweeps = 0;
};

/// The original sweep engine (SchedulerKind::kStaticBlock): threads
/// continuously sweep the shared active set, starting at their static block
/// so they spread out instead of contending on the same low labels.
template <typename GraphT, VertexProgram Program, typename Policy>
EngineResult run_async_sweep(const GraphT& g, Program& prog,
                             EdgeDataArray<typename Program::EdgeData>& edges,
                             Policy policy, const EngineOptions& opts,
                             const std::vector<VertexId>& seeds) {
  Timer timer;
  AsyncActiveSet active(g.num_vertices());
  for (const VertexId v : seeds) active.schedule(v);

  const std::size_t nt = std::max<std::size_t>(1, opts.num_threads);
  std::vector<AsyncWorkerTotals> totals(nt);
  // Update cap standing in for max_iterations: |V| * max_iterations matches
  // the barriered engines' worst-case work budget.
  const std::uint64_t update_cap =
      static_cast<std::uint64_t>(opts.max_iterations) *
      std::max<std::uint64_t>(1, g.num_vertices());
  std::atomic<std::uint64_t> global_updates{0};
  std::atomic<bool> capped{false};

  run_team(nt, [&](std::size_t tid) {
    AsyncContext<typename Program::EdgeData, Policy, AsyncSweepView, GraphT>
        ctx(g, edges, policy, AsyncSweepView(active));
    AsyncWorkerTotals& t = totals[tid];  // exclusive slot; read after join
    const VertexId n = g.num_vertices();
    const VertexId start =
        static_cast<VertexId>(static_block(n, nt, tid).begin);

    while (!active.quiescent() && !capped.load(std::memory_order_relaxed)) {
      for (VertexId i = 0; i < n; ++i) {
        const VertexId v = static_cast<VertexId>((start + i) % n);
        if (!active.maybe_active(v)) continue;
        if (!active.claim(v)) continue;
        if (!active.begin_update(v)) {
          // f(v) is mid-flight on another thread: hand the activation back
          // and keep sweeping; the next sweep will retry it.
          active.schedule(v);
          active.finished();
          continue;
        }
        ctx.begin(v, t.sweeps);
        prog.update(v, ctx);
        active.end_update(v);
        active.finished();
        ++t.updates;
        t.work += g.in_edges(v).size() + g.out_neighbors(v).size();
        if (t.updates % 4096 == 0 &&
            global_updates.fetch_add(4096, std::memory_order_relaxed) + 4096 >
                update_cap) {
          capped.store(true, std::memory_order_relaxed);
          break;
        }
      }
      ++t.sweeps;
    }
  });

  EngineResult result;
  result.converged = active.quiescent() && !capped.load();
  result.seconds = timer.seconds();
  result.per_thread_updates.reserve(nt);
  result.per_thread_work.reserve(nt);
  std::uint64_t sweeps = 0;
  for (const AsyncWorkerTotals& t : totals) {
    result.per_thread_updates.push_back(t.updates);
    result.per_thread_work.push_back(t.work);
    result.updates += t.updates;
    sweeps += t.sweeps;
  }
  result.iterations = sweeps / nt;  // mean sweeps per thread
  return result;
}

/// Queue-driven pure-async execution (kStealing / kBucket): activations are
/// pushed to a concurrent worklist by the thread that wins them; workers pop
/// (or steal) until quiescence.
template <typename GraphT, VertexProgram Program, typename Policy, Worklist WL>
EngineResult run_async_worklist(const GraphT& g, Program& prog,
                                EdgeDataArray<typename Program::EdgeData>& edges,
                                Policy policy, const EngineOptions& opts,
                                const std::vector<VertexId>& seeds) {
  Timer timer;
  AsyncActiveSet active(g.num_vertices());
  const std::size_t nt = std::max<std::size_t>(1, opts.num_threads);
  WL worklist = make_worklist<WL>(nt, opts);

  {
    // Seed round-robin across the queues (visible to workers via spawn).
    std::size_t i = 0;
    for (const VertexId v : seeds) {
      if (active.try_activate(v)) {
        worklist.push(i % nt, v, scheduling_priority(prog, v));
        ++i;
      }
    }
    for (std::size_t t = 0; t < nt; ++t) worklist.publish(t);
  }

  std::vector<AsyncWorkerTotals> totals(nt);
  const std::uint64_t update_cap =
      static_cast<std::uint64_t>(opts.max_iterations) *
      std::max<std::uint64_t>(1, g.num_vertices());
  std::atomic<std::uint64_t> global_updates{0};
  std::atomic<bool> capped{false};

  // Hub splitting (perf/hub_gather.hpp): a claimed hub holds its running bit
  // and its pending count while its chunk tokens are in flight, so the
  // quiescence invariant (pending counts unfinished activations) is
  // untouched; the last chunk's thread runs apply and releases both. Only
  // the queue-driven engines split — the sweep engine has no queue to
  // co-schedule chunks on. Static-CSR-only (HubTable geometry is baked from
  // Graph offsets); dynamic views run whole-vertex updates.
  constexpr bool kHubCapable =
      std::is_same_v<GraphT, Graph> && EdgeParallelGatherProgram<Program>;
  using GD = typename GatherDataOf<Program>::type;
  perf::HubTable hub_table;
  perf::HubGatherState<GD> hub_state;
  if constexpr (kHubCapable) {
    if (opts.hub_threshold > 0) {
      hub_table = perf::HubTable(g, opts.hub_threshold, opts.hub_chunk_edges);
      hub_state = perf::HubGatherState<GD>(hub_table);
    }
  }
  const bool hubs_on = !hub_table.empty();
  std::atomic<std::uint64_t> hub_splits{0};
  std::atomic<std::uint64_t> hub_chunks{0};

  run_team(nt, [&](std::size_t tid) {
    using View = AsyncWorklistView<WL, Program>;
    View view(active, worklist, prog, tid);
    AsyncContext<typename Program::EdgeData, Policy, View, GraphT> ctx(
        g, edges, policy, view);
    AsyncWorkerTotals& t = totals[tid];

    while (!active.quiescent() && !capped.load(std::memory_order_relaxed)) {
      VertexId v;
      if (!worklist.try_pop(tid, v)) {
        // Nothing reachable: another thread holds the remaining work (or is
        // mid-update and about to produce some). Keep the open chunk from
        // going stale, then back off.
        worklist.publish(tid);
        std::this_thread::yield();
        continue;
      }
      if constexpr (kHubCapable) {
        if (perf::is_chunk_token(v)) {
          const std::uint32_t chunk = perf::chunk_of_token(v);
          const auto range = hub_table.chunk_range(g, chunk);
          const auto in = g.in_edges(range.v);
          ctx.begin(range.v, 0);
          GD acc = Program::gather_identity();
          for (std::size_t i = range.begin; i < range.end; ++i) {
            if (i + perf::kGatherPrefetchDistance < range.end) {
              prefetch_edge(ctx, in[i + perf::kGatherPrefetchDistance].id);
            }
            acc = Program::combine(acc, prog.gather_edge(in[i], ctx));
          }
          hub_state.store_partial(policy, chunk, acc);
          t.work += range.end - range.begin;
          const std::uint32_t h = hub_table.hub_index(range.v);
          if (hub_state.finish_chunk(h)) {
            GD total = Program::gather_identity();
            const std::uint32_t base = hub_table.chunk_begin(h);
            const std::uint32_t n = hub_table.num_chunks(h);
            for (std::uint32_t c = 0; c < n; ++c) {
              total = Program::combine(total,
                                       hub_state.read_partial(policy, base + c));
            }
            prog.apply(range.v, total, ctx);
            active.end_update(range.v);
            active.finished();
            ++t.updates;
            t.work += g.out_neighbors(range.v).size();
            if (t.updates % 4096 == 0 &&
                global_updates.fetch_add(4096, std::memory_order_relaxed) +
                        4096 >
                    update_cap) {
              capped.store(true, std::memory_order_relaxed);
            }
          }
          continue;
        }
      }
      // Every queue entry corresponds to exactly one won activation, and
      // entries for a vertex are serialized by the active bit, so the claim
      // cannot fail.
      const bool claimed = active.claim(v);
      NDG_ASSERT(claimed);
      if (!active.begin_update(v)) {
        // f(v) still in flight elsewhere: requeue the activation.
        view.schedule(v);
        active.finished();
        continue;
      }
      if constexpr (kHubCapable) {
        if (hubs_on && hub_table.is_hub(v)) {
          // Split instead of running the monolithic update; the running bit
          // and pending count stay held until the last chunk's apply.
          const std::uint32_t h = hub_table.hub_index(v);
          const std::uint32_t nchunks = hub_table.num_chunks(h);
          const std::uint64_t prio = scheduling_priority(prog, v);
          hub_state.arm(h, nchunks);
          const std::uint32_t base = hub_table.chunk_begin(h);
          for (std::uint32_t c = 0; c < nchunks; ++c) {
            worklist.push(tid, perf::make_chunk_token(base + c), prio);
          }
          worklist.publish(tid);
          hub_splits.fetch_add(1, std::memory_order_relaxed);
          hub_chunks.fetch_add(nchunks, std::memory_order_relaxed);
          continue;
        }
      }
      ctx.begin(v, 0);
      prog.update(v, ctx);
      active.end_update(v);
      active.finished();
      ++t.updates;
      t.work += g.in_edges(v).size() + g.out_neighbors(v).size();
      if (t.updates % 4096 == 0 &&
          global_updates.fetch_add(4096, std::memory_order_relaxed) + 4096 >
              update_cap) {
        capped.store(true, std::memory_order_relaxed);
      }
    }
  });

  EngineResult result;
  result.converged = active.quiescent() && !capped.load();
  result.seconds = timer.seconds();
  result.hub_splits = hub_splits.load(std::memory_order_relaxed);
  result.hub_chunks = hub_chunks.load(std::memory_order_relaxed);
  for (const AsyncWorkerTotals& t : totals) {
    result.per_thread_updates.push_back(t.updates);
    result.per_thread_work.push_back(t.work);
    result.updates += t.updates;
  }
  // No sweeps exist here; report "equivalent full passes" for comparability.
  result.iterations = static_cast<std::size_t>(
      result.updates / std::max<std::uint64_t>(1, g.num_vertices()));
  const WorklistStats wl_stats = worklist.stats();
  result.steals = wl_stats.steals;
  result.steal_attempts = wl_stats.steal_attempts;
  return result;
}

template <typename GraphT, VertexProgram Program, typename Policy>
EngineResult run_pure_async_impl(const GraphT& g, Program& prog,
                                 EdgeDataArray<typename Program::EdgeData>& edges,
                                 Policy policy, const EngineOptions& opts,
                                 const std::vector<VertexId>& seeds) {
  switch (opts.scheduler) {
    case SchedulerKind::kStealing:
      return run_async_worklist<GraphT, Program, Policy, StealingWorklist>(
          g, prog, edges, policy, opts, seeds);
    case SchedulerKind::kBucket:
      return run_async_worklist<GraphT, Program, Policy, BucketWorklist>(
          g, prog, edges, policy, opts, seeds);
    case SchedulerKind::kStaticBlock:
      break;
  }
  return run_async_sweep(g, prog, edges, policy, opts, seeds);
}

template <typename GraphT, VertexProgram Program>
EngineResult run_pure_async_mode(const GraphT& g, Program& prog,
                                 EdgeDataArray<typename Program::EdgeData>& edges,
                                 const EngineOptions& opts,
                                 const std::vector<VertexId>& seeds) {
  switch (opts.mode) {
    case AtomicityMode::kLocked: {
      EdgeLockTable locks(edges.size());
      return run_pure_async_impl(g, prog, edges, LockedAccess{&locks}, opts,
                                 seeds);
    }
    case AtomicityMode::kAligned:
      return run_pure_async_impl(g, prog, edges, AlignedAccess{}, opts, seeds);
    case AtomicityMode::kRelaxed:
      return run_pure_async_impl(g, prog, edges, RelaxedAtomicAccess{}, opts,
                                 seeds);
    case AtomicityMode::kSeqCst:
      return run_pure_async_impl(g, prog, edges, SeqCstAccess{}, opts, seeds);
  }
  return {};
}

}  // namespace detail

/// Pure asynchronous execution with the atomicity method from opts.mode and
/// the schedule from opts.scheduler.
template <VertexProgram Program>
EngineResult run_pure_async(const Graph& g, Program& prog,
                            EdgeDataArray<typename Program::EdgeData>& edges,
                            const EngineOptions& opts) {
  return detail::run_pure_async_mode(g, prog, edges, opts,
                                     prog.initial_frontier(g));
}

/// Warm-start entry point: pure-async execution on any graph view from a
/// caller-supplied activation set over the CURRENT edge state (edges is NOT
/// re-initialized). Counterpart of run_nondeterministic_from for the
/// barrier-free model; used by src/dyn/incremental.hpp after a mutation
/// batch. Duplicate seeds are fine (try_activate dedups on the active bit).
template <typename GraphT, VertexProgram Program>
EngineResult run_pure_async_from(const GraphT& g, Program& prog,
                                 EdgeDataArray<typename Program::EdgeData>& edges,
                                 std::vector<VertexId> seeds,
                                 const EngineOptions& opts) {
  return detail::run_pure_async_mode(g, prog, edges, opts, seeds);
}

}  // namespace ndg
