#include "engine/options.hpp"

#include <algorithm>
#include <numeric>

namespace ndg {

double EngineResult::abort_rate() const {
  const std::uint64_t total = spec_commits + spec_aborts;
  if (total == 0) return 0.0;
  return static_cast<double>(spec_aborts) / static_cast<double>(total);
}

double EngineResult::mean_staleness() const {
  if (delayed_writes == 0) return 0.0;
  return static_cast<double>(staleness_total) /
         static_cast<double>(delayed_writes);
}

std::uint64_t EngineResult::push_iterations() const {
  std::uint64_t n = 0;
  for (const std::uint8_t p : direction_push) n += p;
  return n;
}

double EngineResult::load_imbalance() const {
  const std::vector<std::uint64_t>& counts =
      !per_thread_work.empty() ? per_thread_work : per_thread_updates;
  if (counts.empty()) return 1.0;
  const std::uint64_t max = *std::max_element(counts.begin(), counts.end());
  const std::uint64_t total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(counts.size());
  return static_cast<double>(max) / mean;
}

}  // namespace ndg
