#pragma once
// Speculative execution with conflict detection and rollback — the engine for
// algorithms the paper's eligibility theorems deliberately exclude (maximal
// matching, greedy MIS, greedy coloring: docs/SPECULATION.md). Where every
// other engine's correctness story is "eligibility" (the algorithm tolerates
// nondeterminism), this engine's story is "rollback": it runs *ineligible*
// algorithms in parallel and guarantees the result equals the sequential
// greedy-by-id execution at any thread count.
//
// Each round:
//   1. plan   — threads optimistically execute the current worklist prefix in
//               deterministic id order (static contiguous blocks over the
//               sparse frontier's ascending list), recording each update's
//               read/write *neighborhood footprint* (the vertices whose state
//               or incident edges it touched) and its decision into
//               arena-backed LocalState. No shared state is written.
//   2. resolve — a sequential ascending sweep over the planned items with a
//               per-vertex dirty stamp: an item aborts iff any footprint
//               vertex was dirtied by a smaller item this round; a committed
//               writer dirties its declared write vertices; an *aborted* item
//               dirties its full static neighborhood, because its re-execution
//               may write anywhere in it. Lowest id always wins.
//   3. commit — committed items apply their writes in parallel (their write
//               neighborhoods are pairwise disjoint by construction, so plain
//               aligned access is race-free); aborted items are rescheduled
//               and re-execute from scratch next round.
//
// Operators declare a *cautious point* — all reads happen in plan(), all
// writes in commit() — via the CautiousProgram concept, so rollback is simply
// "don't run commit()": no undo logs (Galois's cautious-operator discipline,
// SNIPPETS.md §1–2). Per-round operator-local state lives in a per-thread
// mem::IterArena and is recycled wholesale each round.
//
// Why the result equals sequential greedy-by-id execution, independent of
// thread count: the commit/abort decision depends only on footprints and id
// order, never on timing. Within a round, a committed item saw no writes from
// smaller items (else it would have aborted), and no larger item that
// conflicts with an aborted item can commit (the abort poisoned its whole
// potential write region). Conflicting updates therefore always apply in
// ascending id order, which is exactly the DE schedule.

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "analysis/access_manifest.hpp"
#include "atomics/access_policy.hpp"
#include "atomics/edge_data.hpp"
#include "engine/frontier.hpp"
#include "engine/options.hpp"
#include "engine/vertex_program.hpp"
#include "graph/graph.hpp"
#include "mem/iter_arena.hpp"
#include "util/thread_team.hpp"
#include "util/timer.hpp"

namespace ndg {

/// A cautious operator: the whole read set is visited before the first write
/// (plan), and writes are replayable from the recorded decision (commit).
/// Structural requirements checked here; the plan/commit member templates are
/// checked at instantiation, like VertexProgram's update(). Contract beyond
/// the syntax:
///
///   * plan(v, PlanContext&, LocalState&) performs every read through the
///     context (so it lands in the footprint), writes NOTHING shared, and
///     declares every vertex the commit will affect via will_write /
///     will_write_vertex.
///   * commit(v, CommitContext&, const LocalState&) applies exactly the
///     declared writes. It may re-read v's own incident edges (the engine
///     guarantees they are unchanged since plan), but must not read anything
///     else.
///   * All reads AND writes stay inside v's static neighborhood ({v} ∪ N(v),
///     vertex state or incident edges) — the abort rule poisons exactly that
///     region, and the serialization argument needs a retry's reads to be
///     unreachable by any larger item that committed past the abort.
/// (The manifest requirement is spelled inline rather than via
/// analysis/static_eligibility.hpp's ManifestedProgram: the engine layer does
/// not depend on the analysis layer.)
template <typename P>
concept CautiousProgram =
    VertexProgram<P> && requires {
      { P::kManifest } -> std::convertible_to<AccessManifest>;
      typename P::LocalState;
      requires std::is_trivially_copyable_v<typename P::LocalState>;
      { P::kCautious } -> std::convertible_to<bool>;
    } && P::kCautious;

/// One recorded footprint access: the *vertex* a speculative read or write
/// intent maps onto (edge accesses map to the other endpoint; the planning
/// vertex itself is tracked implicitly by the resolver).
struct SpecFootprint {
  VertexId vtx;
  std::uint8_t write;  // 0 = read, 1 = declared write intent
};

/// One planned update, pointing into its thread's footprint log. `committed`
/// is filled by the resolution sweep.
struct SpecItem {
  VertexId v;
  std::uint32_t foot_begin;
  std::uint32_t foot_end;
  void* local;  // LocalState, allocated from the thread's IterArena
  bool committed;
};

struct SpecResolution {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
};

/// The sequential conflict-resolution sweep (phase 2). `items[t]` holds
/// thread t's planned updates in ascending id order, and the thread blocks
/// are contiguous ascending, so iterating t = 0..T-1 visits every item in
/// global id order. `dirty` is a per-vertex round stamp (never cleared; a
/// vertex is dirty iff dirty[v] == round, so `round` must start at 1).
SpecResolution resolve_speculative_round(
    const Graph& g, std::span<const std::vector<SpecFootprint>> footprints,
    std::span<std::vector<SpecItem>> items, std::vector<std::uint32_t>& dirty,
    std::uint32_t round);

/// The plan phase's window onto the system: reads route through an access
/// policy AND land in the footprint log; writes are *declarations only*.
template <EdgePod ED, typename GraphT = Graph>
class PlanContext {
 public:
  using EdgeData = ED;

  PlanContext(const GraphT& g, EdgeDataArray<ED>& edges,
              std::vector<SpecFootprint>& footprints)
      : g_(&g), edges_(&edges), foot_(&footprints) {}

  void begin(VertexId v, std::size_t iteration) {
    v_ = v;
    iter_ = static_cast<std::uint32_t>(iteration);
  }

  [[nodiscard]] VertexId vertex() const { return v_; }
  [[nodiscard]] std::size_t iteration() const { return iter_; }
  [[nodiscard]] const GraphT& graph() const { return *g_; }

  [[nodiscard]] std::span<const InEdge> in_edges() const {
    return g_->in_edges(v_);
  }
  [[nodiscard]] std::span<const VertexId> out_neighbors() const {
    return g_->out_neighbors(v_);
  }
  [[nodiscard]] EdgeId out_edge_id(std::size_t k) const {
    return g_->out_edge_id(v_, k);
  }

  /// Reads edge e, recording the read against its other endpoint (the edge is
  /// shared with exactly that vertex's updates). Plain aligned access is safe:
  /// nothing writes during the plan phase.
  [[nodiscard]] ED read(EdgeId e, VertexId other_endpoint) {
    foot_->push_back(SpecFootprint{other_endpoint, 0});
    return policy_.read(*edges_, e);
  }

  /// Records a read of u's *program state* (arrays owned by the program,
  /// invisible to the edge-data layer). The caller does the actual read.
  void read_vertex(VertexId u) { foot_->push_back(SpecFootprint{u, 0}); }

  /// Declares that commit will write edge e (shared with other_endpoint).
  void will_write(EdgeId e, VertexId other_endpoint) {
    (void)e;  // the footprint is vertex-granular
    foot_->push_back(SpecFootprint{other_endpoint, 1});
  }

  /// Declares that commit will write u's program state.
  void will_write_vertex(VertexId u) { foot_->push_back(SpecFootprint{u, 1}); }

 private:
  const GraphT* g_;
  EdgeDataArray<ED>* edges_;
  std::vector<SpecFootprint>* foot_;
  AlignedAccess policy_{};
  VertexId v_ = kInvalidVertex;
  std::uint32_t iter_ = 0;
};

/// The commit phase's window: applies writes with the Section II
/// task-generation rule available (write schedules the other endpoint;
/// write_silent does not). Committed items' write neighborhoods are pairwise
/// disjoint, so plain aligned access is race-free; the frontier bitset is
/// atomic. read(e) is restricted to v's own incident edges — unchanged since
/// plan for a committed item (see the header comment's serialization
/// argument).
template <EdgePod ED, typename GraphT = Graph>
class CommitContext {
 public:
  using EdgeData = ED;

  CommitContext(const GraphT& g, EdgeDataArray<ED>& edges, Frontier& frontier)
      : g_(&g), edges_(&edges), frontier_(&frontier) {}

  void begin(VertexId v, std::size_t iteration) {
    v_ = v;
    iter_ = static_cast<std::uint32_t>(iteration);
  }

  [[nodiscard]] VertexId vertex() const { return v_; }
  [[nodiscard]] std::size_t iteration() const { return iter_; }
  [[nodiscard]] const GraphT& graph() const { return *g_; }

  [[nodiscard]] std::span<const InEdge> in_edges() const {
    return g_->in_edges(v_);
  }
  [[nodiscard]] std::span<const VertexId> out_neighbors() const {
    return g_->out_neighbors(v_);
  }
  [[nodiscard]] EdgeId out_edge_id(std::size_t k) const {
    return g_->out_edge_id(v_, k);
  }

  [[nodiscard]] ED read(EdgeId e) { return policy_.read(*edges_, e); }

  void write(EdgeId e, VertexId other_endpoint, ED value) {
    policy_.write(*edges_, e, value);
    frontier_->schedule(other_endpoint);
  }

  void write_silent(EdgeId e, ED value) { policy_.write(*edges_, e, value); }

  void schedule(VertexId u) { frontier_->schedule(u); }

 private:
  const GraphT* g_;
  EdgeDataArray<ED>* edges_;
  Frontier* frontier_;
  AlignedAccess policy_{};
  VertexId v_ = kInvalidVertex;
  std::uint32_t iter_ = 0;
};

template <CautiousProgram Program>
EngineResult run_speculative(const Graph& g, Program& prog,
                             EdgeDataArray<typename Program::EdgeData>& edges,
                             const EngineOptions& opts) {
  using ED = typename Program::EdgeData;
  using LocalState = typename Program::LocalState;

  Timer timer;
  const std::size_t nt = opts.num_threads > 0 ? opts.num_threads : 1;

  // The worklist must be the ascending sparse list: the plan phase's static
  // contiguous blocks over it are what make concatenated per-thread item logs
  // globally id-ordered (the resolver depends on that).
  Frontier frontier(g.num_vertices(), FrontierPolicy::kSparse);
  frontier.seed(prog.initial_frontier(g));

  std::vector<std::vector<SpecFootprint>> footprints(nt);
  std::vector<std::vector<SpecItem>> items(nt);
  std::vector<mem::IterArena> arenas;
  arenas.reserve(nt);
  for (std::size_t t = 0; t < nt; ++t) arenas.emplace_back();
  // Round stamps start at 1: a zero-filled array means "never dirtied".
  std::vector<std::uint32_t> dirty(g.num_vertices(), 0);

  std::vector<std::uint64_t> thread_updates(nt, 0);
  std::vector<std::uint64_t> thread_work(nt, 0);

  ThreadTeam team(nt);
  EngineResult result;
  std::uint32_t round = 0;
  while (!frontier.empty() && result.iterations < opts.max_iterations) {
    ++round;
    const std::vector<VertexId>& cur = frontier.current();
    result.frontier_sizes.push_back(cur.size());

    // Phase 1: speculative plan. Thread t owns one contiguous ascending block
    // of the worklist; nothing shared is written.
    parallel_for_blocks(cur.size(), team,
                        [&](std::size_t begin, std::size_t end,
                            std::size_t tid) {
      arenas[tid].reset();
      footprints[tid].clear();
      items[tid].clear();
      PlanContext<ED> ctx(g, edges, footprints[tid]);
      for (std::size_t i = begin; i < end; ++i) {
        const VertexId v = cur[i];
        LocalState* local = arenas[tid].alloc<LocalState>();
        *local = LocalState{};
        ctx.begin(v, result.iterations);
        const auto foot_begin =
            static_cast<std::uint32_t>(footprints[tid].size());
        prog.plan(v, ctx, *local);
        items[tid].push_back(
            SpecItem{v, foot_begin,
                     static_cast<std::uint32_t>(footprints[tid].size()), local,
                     false});
        ++thread_updates[tid];
        thread_work[tid] += g.in_degree(v) + g.out_degree(v);
      }
    });

    // Phase 2: sequential conflict resolution in global id order.
    const SpecResolution res = resolve_speculative_round(
        g, std::span<const std::vector<SpecFootprint>>(footprints),
        std::span<std::vector<SpecItem>>(items), dirty, round);
    result.spec_commits += res.commits;
    result.spec_aborts += res.aborts;

    // Phase 3: parallel commit of winners; losers re-enter the worklist and
    // re-plan from scratch next round (cautious operators need no undo).
    parallel_for_blocks(cur.size(), team,
                        [&](std::size_t /*begin*/, std::size_t /*end*/,
                            std::size_t tid) {
      CommitContext<ED> ctx(g, edges, frontier);
      for (SpecItem& item : items[tid]) {
        if (item.committed) {
          ctx.begin(item.v, result.iterations);
          prog.commit(item.v, ctx, *static_cast<const LocalState*>(item.local));
        } else {
          frontier.schedule(item.v);
        }
      }
    });

    frontier.advance();
    ++result.iterations;
  }

  result.converged = frontier.empty();
  result.updates = result.spec_commits + result.spec_aborts;
  result.per_thread_updates = thread_updates;
  result.per_thread_work = thread_work;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace ndg
