#pragma once
// Deterministic execution (the paper's "DE" baseline): the semantics of
// GraphChi's external deterministic scheduler. Updates of an iteration run in
// ascending label order with immediate (Gauss–Seidel) visibility; because the
// execution path must respect the data dependences among updates, the
// schedule is sequential — the paper notes DE "does not scale (the updates
// are actually conducted sequentially due to the data dependences among the
// updates)". An optional AccessObserver (e.g. the ConflictTracer or the
// MonotonicityChecker) instruments every edge access.

#include "atomics/access_policy.hpp"
#include "engine/options.hpp"
#include "engine/update_context.hpp"
#include "engine/vertex_program.hpp"
#include "util/timer.hpp"

namespace ndg {

template <VertexProgram Program>
EngineResult run_deterministic(const Graph& g, Program& prog,
                               EdgeDataArray<typename Program::EdgeData>& edges,
                               std::size_t max_iterations = 100000,
                               AccessObserver* observer = nullptr) {
  Timer timer;
  Frontier frontier(g.num_vertices());
  frontier.seed(prog.initial_frontier(g));

  // Single-threaded => plain aligned access is race-free here.
  UpdateContext<typename Program::EdgeData, AlignedAccess> ctx(
      g, edges, AlignedAccess{}, frontier, observer);

  EngineResult result;
  while (!frontier.empty() && result.iterations < max_iterations) {
    result.frontier_sizes.push_back(
        static_cast<std::uint32_t>(frontier.current().size()));
    for (const VertexId v : frontier.current()) {
      ctx.begin(v, result.iterations);
      prog.update(v, ctx);
      ++result.updates;
    }
    frontier.advance();
    ++result.iterations;
  }
  result.converged = frontier.empty();
  result.seconds = timer.seconds();
  return result;
}

}  // namespace ndg
