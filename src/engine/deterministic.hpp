#pragma once
// Deterministic execution (the paper's "DE" baseline): the semantics of
// GraphChi's external deterministic scheduler. Updates of an iteration run in
// ascending label order with immediate (Gauss–Seidel) visibility; because the
// execution path must respect the data dependences among updates, the
// schedule is sequential — the paper notes DE "does not scale (the updates
// are actually conducted sequentially due to the data dependences among the
// updates)". An optional AccessObserver (e.g. the ConflictTracer or the
// MonotonicityChecker) instruments every edge access.

#include "atomics/access_policy.hpp"
#include "engine/options.hpp"
#include "engine/update_context.hpp"
#include "engine/vertex_program.hpp"
#include "util/timer.hpp"

namespace ndg {

/// Canonical entry point: honors EngineOptions::max_iterations like the other
/// engines (num_threads is ignored — DE is sequential by definition) and
/// reports honest single-thread telemetry: per_thread_updates/per_thread_work
/// are one-element vectors, so DE rows in eligibility_report read as a
/// measured single-thread run instead of silently showing zeros.
template <VertexProgram Program>
EngineResult run_deterministic(const Graph& g, Program& prog,
                               EdgeDataArray<typename Program::EdgeData>& edges,
                               const EngineOptions& opts,
                               AccessObserver* observer = nullptr) {
  Timer timer;
  Frontier frontier(g.num_vertices());
  frontier.seed(prog.initial_frontier(g));

  // Single-threaded => plain aligned access is race-free here.
  UpdateContext<typename Program::EdgeData, AlignedAccess> ctx(
      g, edges, AlignedAccess{}, frontier, observer);

  EngineResult result;
  std::uint64_t work = 0;
  while (!frontier.empty() && result.iterations < opts.max_iterations) {
    result.frontier_sizes.push_back(frontier.current().size());
    for (const VertexId v : frontier.current()) {
      ctx.begin(v, result.iterations);
      prog.update(v, ctx);
      ++result.updates;
      work += g.in_degree(v) + g.out_degree(v);
    }
    frontier.advance();
    ++result.iterations;
  }
  result.converged = frontier.empty();
  // The whole run is one thread: telemetry is that thread's totals (the
  // degree-weighted work counter matches the nondeterministic engines').
  result.per_thread_updates = {result.updates};
  result.per_thread_work = {work};
  result.seconds = timer.seconds();
  return result;
}

/// Positional-cap compatibility overload (the pre-EngineOptions signature).
template <VertexProgram Program>
EngineResult run_deterministic(const Graph& g, Program& prog,
                               EdgeDataArray<typename Program::EdgeData>& edges,
                               std::size_t max_iterations = 100000,
                               AccessObserver* observer = nullptr) {
  EngineOptions opts;
  opts.max_iterations = max_iterations;
  return run_deterministic(g, prog, edges, opts, observer);
}

}  // namespace ndg
