#include "engine/coloring.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ndg {

Coloring greedy_color(const Graph& g) {
  const VertexId n = g.num_vertices();
  Coloring result;
  result.color.assign(n, 0);

  // mark[c] == v  <=>  color c is used by a neighbour of the current vertex.
  std::vector<VertexId> mark;
  for (VertexId v = 0; v < n; ++v) {
    auto mark_neighbor = [&](VertexId u) {
      // Only vertices before v in the greedy order are colored yet; later
      // neighbours will avoid v's color when their own turn comes.
      if (u >= v) return;
      const std::uint32_t c = result.color[u];
      if (c >= mark.size()) mark.resize(c + 1, kInvalidVertex);
      mark[c] = v;
    };
    // Neighbours in both directions share an edge datum with v.
    for (const VertexId u : g.out_neighbors(v)) mark_neighbor(u);
    for (const InEdge& ie : g.in_edges(v)) mark_neighbor(ie.src);

    std::uint32_t c = 0;
    while (c < mark.size() && mark[c] == v) ++c;
    result.color[v] = c;
    result.num_colors = std::max(result.num_colors, c + 1);
  }
  return result;
}

bool is_proper_coloring(const Graph& g, const Coloring& c) {
  NDG_ASSERT(c.color.size() == g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.out_neighbors(v)) {
      if (u != v && c.color[u] == c.color[v]) return false;
    }
  }
  return true;
}

}  // namespace ndg
