#pragma once
// Structural statistics used by bench/table1_graphs to characterize the
// stand-in data-sets against the paper's Table I.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ndg {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  double avg_out_degree = 0.0;
  EdgeId max_out_degree = 0;
  EdgeId max_in_degree = 0;
  /// Fraction of all edges owned by the top 1% highest out-degree vertices —
  /// a cheap skew measure separating web/social graphs from meshes.
  double top1pct_out_edge_share = 0.0;
  VertexId num_sources = 0;  // in-degree 0
  VertexId num_sinks = 0;    // out-degree 0
  /// BFS eccentricity from `probe` over the symmetrized graph: a diameter
  /// lower bound distinguishing small-world graphs from grids.
  VertexId bfs_eccentricity = 0;
  /// Fraction of edges whose reverse edge also exists (1.0 for symmetrized
  /// graphs like cage15, low for crawls).
  double reciprocity = 0.0;
  /// histogram[k] = number of vertices with out-degree in [2^k, 2^(k+1))
  /// (histogram[0] counts degrees 0 and 1). Log-log-linear tails are the
  /// power-law signature of the web/social stand-ins.
  std::vector<std::uint64_t> out_degree_histogram;
};

GraphStats compute_stats(const Graph& g, VertexId probe = 0);

/// The vertex with the largest out-degree — a traversal source that actually
/// reaches a big part of the graph (random generators can leave low-id
/// vertices isolated, which would trivialize SSSP/BFS experiments).
VertexId max_out_degree_vertex(const Graph& g);

}  // namespace ndg
