#include "graph/graph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ndg {

Graph Graph::build(VertexId num_vertices, EdgeList edges,
                   const GraphBuildOptions& opts) {
  if (opts.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }
  // Canonical order: (src, dst). This fixes edge ids independent of the
  // order the loader/generator emitted edges in.
  std::sort(edges.begin(), edges.end());
  if (opts.remove_duplicate_edges) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  Graph g;
  g.num_vertices_ = num_vertices;
  g.num_edges_ = static_cast<EdgeId>(edges.size());
  // Exact-size arena buffers (zero-initialized), placed per opts.mem. No
  // incremental growth, so peak memory is one allocation per array.
  g.out_offsets_ = mem::Buffer<EdgeId>(num_vertices + 1, opts.mem);
  g.in_offsets_ = mem::Buffer<EdgeId>(num_vertices + 1, opts.mem);
  g.out_targets_ = mem::Buffer<VertexId>(edges.size(), opts.mem);
  g.in_edges_ = mem::Buffer<InEdge>(edges.size(), opts.mem);
  g.edge_src_ = mem::Buffer<VertexId>(edges.size(), opts.mem);

  for (const Edge& e : edges) {
    NDG_ASSERT_MSG(e.src < num_vertices && e.dst < num_vertices,
                   "edge endpoint out of range");
    ++g.out_offsets_[e.src + 1];
    ++g.in_offsets_[e.dst + 1];
  }
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }

  // Edges are sorted by (src, dst), so edge id == position in the sorted
  // list == CSR slot: CSR and the edge-source inverse fill directly with no
  // per-vertex cursor array. Only CSC needs running cursors.
  {
    std::vector<EdgeId> next_in(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (EdgeId id = 0; id < g.num_edges_; ++id) {
      const Edge& e = edges[id];
      g.out_targets_[id] = e.dst;
      g.edge_src_[id] = e.src;
      g.in_edges_[next_in[e.dst]++] = InEdge{e.src, id};
    }
  }
  return g;
}

VertexId Graph::edge_source_search(EdgeId e) const {
  NDG_ASSERT(e < num_edges_);
  // First offset strictly greater than e belongs to source+1.
  const auto it = std::upper_bound(out_offsets_.begin(), out_offsets_.end(), e);
  return static_cast<VertexId>(std::distance(out_offsets_.begin(), it) - 1);
}

EdgeList symmetrize(const EdgeList& edges) {
  EdgeList out;
  out.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    out.push_back(e);
    out.push_back(Edge{e.dst, e.src});
  }
  return out;
}

}  // namespace ndg
