#pragma once
// SNAP-format edge-list I/O: whitespace-separated "src dst" per line, '#'
// comment lines. This is the format of the Stanford Large Network Dataset
// Collection files the paper uses (web-BerkStan, web-Google,
// soc-LiveJournal1); real data drops straight into the benches when present.

#include <string>

#include "graph/edge_list.hpp"

namespace ndg {

struct LoadedEdgeList {
  EdgeList edges;
  VertexId num_vertices = 0;  // 1 + max endpoint id
};

/// Parses an edge-list file. Throws std::runtime_error on unreadable files or
/// malformed lines.
LoadedEdgeList load_edge_list(const std::string& path);

/// Parses edge-list text from memory (used by tests).
LoadedEdgeList parse_edge_list(const std::string& text);

/// Writes "src dst" lines with a comment header.
void save_edge_list(const std::string& path, const EdgeList& edges,
                    const std::string& comment = "");

}  // namespace ndg
