#include "graph/graph_stats.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace ndg {

VertexId max_out_degree_vertex(const Graph& g) {
  VertexId best = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(best)) best = v;
  }
  return best;
}

GraphStats compute_stats(const Graph& g, VertexId probe) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  if (s.num_vertices == 0) return s;
  s.avg_out_degree =
      static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);

  std::vector<EdgeId> out_degs(s.num_vertices);
  for (VertexId v = 0; v < s.num_vertices; ++v) {
    out_degs[v] = g.out_degree(v);
    s.max_out_degree = std::max(s.max_out_degree, out_degs[v]);
    s.max_in_degree = std::max(s.max_in_degree, g.in_degree(v));
    if (g.in_degree(v) == 0) ++s.num_sources;
    if (out_degs[v] == 0) ++s.num_sinks;
  }

  std::sort(out_degs.begin(), out_degs.end(), std::greater<>());
  const auto top = std::max<std::size_t>(1, out_degs.size() / 100);
  EdgeId top_sum = 0;
  for (std::size_t i = 0; i < top; ++i) top_sum += out_degs[i];
  s.top1pct_out_edge_share =
      s.num_edges ? static_cast<double>(top_sum) / static_cast<double>(s.num_edges)
                  : 0.0;

  // Reciprocity: edge (u, v) counts when (v, u) exists. out_neighbors spans
  // are sorted (canonical CSR order), so a binary search suffices.
  if (s.num_edges > 0) {
    EdgeId reciprocal = 0;
    for (VertexId v = 0; v < s.num_vertices; ++v) {
      for (const VertexId u : g.out_neighbors(v)) {
        const auto back = g.out_neighbors(u);
        if (std::binary_search(back.begin(), back.end(), v)) ++reciprocal;
      }
    }
    s.reciprocity =
        static_cast<double>(reciprocal) / static_cast<double>(s.num_edges);
  }

  // Log-bucket out-degree histogram.
  for (VertexId v = 0; v < s.num_vertices; ++v) {
    const EdgeId d = g.out_degree(v);
    std::size_t bucket = 0;
    for (EdgeId x = d; x > 1; x >>= 1) ++bucket;
    if (s.out_degree_histogram.size() <= bucket) {
      s.out_degree_histogram.resize(bucket + 1, 0);
    }
    ++s.out_degree_histogram[bucket];
  }

  // BFS over the union of out- and in-edges (i.e., ignoring direction).
  if (probe < s.num_vertices) {
    std::vector<VertexId> dist(s.num_vertices, kInvalidVertex);
    std::queue<VertexId> q;
    dist[probe] = 0;
    q.push(probe);
    while (!q.empty()) {
      const VertexId u = q.front();
      q.pop();
      s.bfs_eccentricity = std::max(s.bfs_eccentricity, dist[u]);
      auto visit = [&](VertexId w) {
        if (dist[w] == kInvalidVertex) {
          dist[w] = dist[u] + 1;
          q.push(w);
        }
      };
      for (const VertexId w : g.out_neighbors(u)) visit(w);
      for (const InEdge& ie : g.in_edges(u)) visit(ie.src);
    }
  }
  return s;
}

}  // namespace ndg
