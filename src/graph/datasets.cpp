#include "graph/datasets.hpp"

#include "graph/generators.hpp"
#include "graph/loader.hpp"
#include "util/assert.hpp"

namespace ndg {

const char* to_string(DatasetId id) {
  switch (id) {
    case DatasetId::kWebBerkStan:
      return "web-berkstan-sim";
    case DatasetId::kWebGoogle:
      return "web-google-sim";
    case DatasetId::kSocLiveJournal:
      return "soc-livejournal-sim";
    case DatasetId::kCage15:
      return "cage15-sim";
  }
  return "?";
}

std::vector<DatasetId> all_datasets() {
  return {DatasetId::kWebBerkStan, DatasetId::kWebGoogle,
          DatasetId::kSocLiveJournal, DatasetId::kCage15};
}

Dataset make_dataset(DatasetId id, unsigned scale_divisor, std::uint64_t seed) {
  NDG_ASSERT(scale_divisor >= 1);
  const auto scale = [scale_divisor](std::uint64_t x) {
    return std::max<std::uint64_t>(x / scale_divisor, 16);
  };

  switch (id) {
    case DatasetId::kWebBerkStan: {
      // Web crawl: strongly skewed degrees. R-MAT with Graph500 parameters.
      const auto v = static_cast<VertexId>(scale(685231));
      const auto e = scale(7600595);
      return {to_string(id), Graph::build(v, gen::rmat(v, e, seed))};
    }
    case DatasetId::kWebGoogle: {
      const auto v = static_cast<VertexId>(scale(916428));
      const auto e = scale(5105039);
      return {to_string(id), Graph::build(v, gen::rmat(v, e, seed + 1))};
    }
    case DatasetId::kSocLiveJournal: {
      // Social graph: skewed but less extreme than a crawl; flatter R-MAT.
      const auto v = static_cast<VertexId>(scale(4847571));
      const auto e = scale(68993773);
      gen::RmatOptions opts;
      opts.a = 0.45;
      opts.b = 0.22;
      opts.c = 0.22;
      return {to_string(id), Graph::build(v, gen::rmat(v, e, seed + 2, opts))};
    }
    case DatasetId::kCage15: {
      // cage15 is a near-regular sparse matrix (~19 nnz/row). A low-rewire
      // small-world ring with k = 9, symmetrized, gives degree ~18 with the
      // same absence of hubs.
      const auto v = static_cast<VertexId>(scale(5154859));
      return {to_string(id),
              Graph::build(v, symmetrize(gen::small_world(v, 9, 0.05, seed + 3)))};
    }
  }
  NDG_ASSERT_MSG(false, "unknown dataset id");
  return {};
}

Dataset make_dataset_from_file(const std::string& name, const std::string& path) {
  auto loaded = load_edge_list(path);
  return {name, Graph::build(loaded.num_vertices, std::move(loaded.edges))};
}

}  // namespace ndg
