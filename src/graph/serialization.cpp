#include "graph/serialization.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace ndg {

namespace {

constexpr char kMagic[4] = {'N', 'D', 'G', 'B'};
constexpr std::uint32_t kVersion = 1;

class Fnv1a {
 public:
  void feed(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

template <typename T>
void write_pod(std::ofstream& out, Fnv1a& sum, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
  sum.feed(&v, sizeof(T));
}

template <typename T>
void write_vec(std::ofstream& out, Fnv1a& sum, const std::vector<T>& v) {
  const auto bytes = static_cast<std::streamsize>(v.size() * sizeof(T));
  out.write(reinterpret_cast<const char*>(v.data()), bytes);
  sum.feed(v.data(), static_cast<std::size_t>(bytes));
}

template <typename T>
void read_pod(std::ifstream& in, Fnv1a& sum, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("NDGB: truncated file");
  sum.feed(&v, sizeof(T));
}

template <typename T>
void read_vec(std::ifstream& in, Fnv1a& sum, std::vector<T>& v) {
  const auto bytes = static_cast<std::streamsize>(v.size() * sizeof(T));
  in.read(reinterpret_cast<char*>(v.data()), bytes);
  if (!in) throw std::runtime_error("NDGB: truncated file");
  sum.feed(v.data(), static_cast<std::size_t>(bytes));
}

}  // namespace

void save_binary_graph(const std::string& path, const Graph& g) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("NDGB: cannot open for writing: " + path);

  Fnv1a sum;
  out.write(kMagic, 4);
  sum.feed(kMagic, 4);
  write_pod(out, sum, kVersion);
  write_pod(out, sum, static_cast<std::uint64_t>(g.num_vertices()));
  write_pod(out, sum, static_cast<std::uint64_t>(g.num_edges()));

  std::vector<std::uint64_t> offsets(g.num_vertices() + 1);
  offsets[0] = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    offsets[v + 1] = offsets[v] + g.out_degree(v);
  }
  write_vec(out, sum, offsets);

  std::vector<std::uint32_t> targets(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) targets[e] = g.edge_target(e);
  write_vec(out, sum, targets);

  const std::uint64_t checksum = sum.value();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) throw std::runtime_error("NDGB: write failed: " + path);
}

Graph load_binary_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("NDGB: cannot open: " + path);

  Fnv1a sum;
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("NDGB: bad magic: " + path);
  }
  sum.feed(magic, 4);

  std::uint32_t version = 0;
  read_pod(in, sum, version);
  if (version != kVersion) throw std::runtime_error("NDGB: unsupported version");

  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  read_pod(in, sum, num_vertices);
  read_pod(in, sum, num_edges);

  std::vector<std::uint64_t> offsets(num_vertices + 1);
  read_vec(in, sum, offsets);
  std::vector<std::uint32_t> targets(num_edges);
  read_vec(in, sum, targets);

  std::uint64_t stored_sum = 0;
  in.read(reinterpret_cast<char*>(&stored_sum), sizeof(stored_sum));
  if (!in || stored_sum != sum.value()) {
    throw std::runtime_error("NDGB: checksum mismatch: " + path);
  }

  // CSR was saved in canonical order, so the rebuilt edge list is pre-sorted
  // and Graph::build assigns identical edge ids.
  EdgeList edges;
  edges.reserve(num_edges);
  for (std::uint64_t v = 0; v < num_vertices; ++v) {
    for (std::uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      edges.push_back(Edge{static_cast<VertexId>(v), targets[e]});
    }
  }
  // Keep exactly what was saved (it already went through canonicalization).
  GraphBuildOptions opts;
  opts.remove_self_loops = false;
  opts.remove_duplicate_edges = false;
  return Graph::build(static_cast<VertexId>(num_vertices), std::move(edges),
                      opts);
}

}  // namespace ndg
