#pragma once
// Immutable in-memory directed graph in CSR (out-edges) + CSC (in-edges) form.
//
// This is the stand-in for GraphChi's in-memory graph representation: the
// paper's experiments keep every graph fully memory-resident, so we drop
// GraphChi's out-of-core shards and keep the part that matters for the study —
// a per-edge data slot shared between the edge's two endpoint update
// functions. Edge ids are dense in [0, num_edges) in source-major CSR order;
// per-edge algorithm data lives in external arrays indexed by edge id (see
// atomics/edge_data.hpp), so both the out-edge view (CSR) and the in-edge
// view (CSC, which carries the canonical edge id) address the *same* slot.
// That sharing is exactly what creates the read-write and write-write
// conflicts the paper studies.

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "mem/numa_arena.hpp"
#include "util/types.hpp"

namespace ndg {

/// An in-edge as seen from its destination: the source vertex plus the
/// canonical (CSR) edge id used to index per-edge data arrays.
struct InEdge {
  VertexId src;
  EdgeId id;
};

struct GraphBuildOptions {
  bool remove_self_loops = true;
  bool remove_duplicate_edges = true;
  /// Placement for the topology arrays (hugepages / NUMA interleave / bind —
  /// see mem/mem_policy.hpp and docs/PERF.md). Best-effort.
  MemSpec mem{};
};

class Graph {
 public:
  Graph() = default;

  /// Builds CSR+CSC from an edge list. Edges are canonicalized (sorted by
  /// (src, dst)) so the same edge list always yields the same edge ids.
  /// `num_vertices` must exceed every endpoint id.
  static Graph build(VertexId num_vertices, EdgeList edges,
                     const GraphBuildOptions& opts = {});

  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }
  [[nodiscard]] EdgeId num_edges() const { return num_edges_; }

  [[nodiscard]] EdgeId out_degree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  [[nodiscard]] EdgeId in_degree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Out-edges of v: targets; the edge id of the k-th out-edge is
  /// out_edges_begin(v) + k.
  [[nodiscard]] std::span<const VertexId> out_neighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            static_cast<std::size_t>(out_degree(v))};
  }
  [[nodiscard]] EdgeId out_edges_begin(VertexId v) const { return out_offsets_[v]; }

  /// Edge id of the k-th out-edge of v. This is the accessor generic graph
  /// views share (the dynamic overlay in src/dyn/ has non-contiguous out-edge
  /// ids, so contexts must not assume out_edges_begin(v) + k).
  [[nodiscard]] EdgeId out_edge_id(VertexId v, std::size_t k) const {
    return out_offsets_[v] + k;
  }

  /// In-edges of v with canonical edge ids.
  [[nodiscard]] std::span<const InEdge> in_edges(VertexId v) const {
    return {in_edges_.data() + in_offsets_[v],
            static_cast<std::size_t>(in_degree(v))};
  }

  /// Target of a canonical edge id.
  [[nodiscard]] VertexId edge_target(EdgeId e) const { return out_targets_[e]; }

  /// Source of a canonical edge id. O(1): the inverse array is materialized
  /// at build time (one VertexId per edge). The distributed router calls this
  /// once per remote scatter, which made the old binary search a hot path.
  [[nodiscard]] VertexId edge_source(EdgeId e) const {
    NDG_ASSERT(e < num_edges_);
    return edge_src_[e];
  }

  /// The pre-inverse-array implementation (O(log V) upper_bound over the CSR
  /// offsets). Kept for the bench_traversal microbench that documents the
  /// win; not used on any hot path.
  [[nodiscard]] VertexId edge_source_search(EdgeId e) const;

 private:
  VertexId num_vertices_ = 0;
  EdgeId num_edges_ = 0;
  // Topology arrays are flat PODs in arena buffers so GraphBuildOptions::mem
  // (hugepage / NUMA placement) covers them; all are exact-size.
  mem::Buffer<EdgeId> out_offsets_;    // size V+1
  mem::Buffer<VertexId> out_targets_;  // size E (CSR order == edge id order)
  mem::Buffer<EdgeId> in_offsets_;     // size V+1
  mem::Buffer<InEdge> in_edges_;       // size E
  mem::Buffer<VertexId> edge_src_;     // size E; edge id -> source vertex
};

/// Adds the reverse of every edge, turning a directed edge list into a
/// symmetric one (the paper represents undirected edges as two opposite
/// directed edges).
EdgeList symmetrize(const EdgeList& edges);

}  // namespace ndg
