#pragma once
// Graph transformations: the utilities a downstream user needs to prepare
// real-world inputs for the engines (the paper's graphs get cleaned the same
// way — e.g. experiments on the largest weakly connected component, or on a
// degree-ordered relabeling to control the scheduling order, since vertex
// labels ARE the deterministic schedule in this model).

#include <vector>

#include "graph/graph.hpp"

namespace ndg {

/// Reverses every edge. Canonical edge ids are re-assigned in the transposed
/// graph's own CSR order.
Graph transpose(const Graph& g);

/// The subgraph induced by `keep` (ids are compacted to [0, keep.size()) in
/// the order given; `keep` must not contain duplicates). Returns the new
/// graph; old-to-new id mapping is by position in `keep`.
Graph induced_subgraph(const Graph& g, const std::vector<VertexId>& keep);

/// Vertices of the largest weakly connected component, ascending.
std::vector<VertexId> largest_weak_component(const Graph& g);

/// Relabels vertices by descending undirected degree (ties by old id), so
/// label order — and therefore the deterministic schedule and the Fig. 1
/// dispatch — visits hubs first. Returns the relabeled graph and the
/// old->new mapping.
struct Relabeling {
  Graph graph;
  std::vector<VertexId> old_to_new;
};
Relabeling relabel_by_degree(const Graph& g);

}  // namespace ndg
