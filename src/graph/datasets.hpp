#pragma once
// Named stand-ins for the paper's Table I data-sets. Each dataset matches the
// original's structure class and |E|/|V| ratio, scaled down by `scale_divisor`
// so the full experiment grid runs in minutes on a laptop (the paper used a
// 16-core Xeon server; see DESIGN.md "Substitutions"). If a real SNAP file is
// available, pass its path to make_dataset_from_file instead — the rest of the
// pipeline is identical.

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ndg {

struct Dataset {
  std::string name;
  Graph graph;
};

/// Table I rows. Sizes at scale_divisor = 1 match the paper:
///   web-berkstan-sim     |V| 685,231   |E| 7,600,595   (web crawl, skewed)
///   web-google-sim       |V| 916,428   |E| 5,105,039   (web crawl, skewed)
///   soc-livejournal-sim  |V| 4,847,571 |E| 68,993,773  (social, skewed, denser)
///   cage15-sim           |V| 5,154,859 |E| 99,199,551  (DNA electrophoresis
///                                                       matrix: near-regular)
enum class DatasetId {
  kWebBerkStan,
  kWebGoogle,
  kSocLiveJournal,
  kCage15,
};

[[nodiscard]] const char* to_string(DatasetId id);
[[nodiscard]] std::vector<DatasetId> all_datasets();

/// Builds a stand-in graph. `scale_divisor` divides both |V| and |E|
/// (default 32 keeps the largest graph ~3M edges). Deterministic in `seed`.
Dataset make_dataset(DatasetId id, unsigned scale_divisor = 32,
                     std::uint64_t seed = 20150707);

/// Loads a real SNAP edge-list file as a dataset.
Dataset make_dataset_from_file(const std::string& name, const std::string& path);

}  // namespace ndg
