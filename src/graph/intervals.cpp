#include "graph/intervals.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ndg {

std::size_t IntervalPlan::interval_of(VertexId v) const {
  NDG_ASSERT(!boundaries.empty() && v < boundaries.back());
  const auto it = std::upper_bound(boundaries.begin(), boundaries.end(), v);
  return static_cast<std::size_t>(std::distance(boundaries.begin(), it)) - 1;
}

IntervalPlan make_intervals(const Graph& g, std::size_t num_intervals) {
  NDG_ASSERT(num_intervals >= 1);
  const VertexId n = g.num_vertices();
  IntervalPlan plan;
  plan.boundaries.reserve(num_intervals + 1);
  plan.boundaries.push_back(0);

  // Greedy sweep: close an interval when it holds ~1/P of the edge mass.
  const std::uint64_t total_work = 2 * g.num_edges();  // each edge counted twice
  std::uint64_t work = 0;
  std::uint64_t next_cut = 1;
  for (VertexId v = 0; v < n; ++v) {
    work += g.in_degree(v) + g.out_degree(v);
    const std::uint64_t target =
        total_work * next_cut / std::max<std::uint64_t>(1, num_intervals);
    if (work >= target && plan.boundaries.size() < num_intervals) {
      plan.boundaries.push_back(v + 1);
      ++next_cut;
    }
  }
  while (plan.boundaries.size() < num_intervals + 1) plan.boundaries.push_back(n);

  plan.has_intra_neighbor.assign(n, false);
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t iv = plan.interval_of(v);
    auto check = [&](VertexId u) {
      if (u != v && plan.interval_of(u) == iv) {
        plan.has_intra_neighbor[v] = true;
        plan.has_intra_neighbor[u] = true;
      }
    };
    for (const VertexId u : g.out_neighbors(v)) check(u);
  }
  return plan;
}

}  // namespace ndg
