#pragma once
// Compact binary graph format ("NDGB"): a fixed header, the CSR arrays, and
// an FNV-1a checksum. Parsing a multi-gigabyte SNAP text file once and
// reloading the binary afterwards turns minutes of I/O into a bulk read —
// the same reason GraphChi preprocesses edge lists into shards.
//
// Layout (little-endian):
//   magic "NDGB" | u32 version | u64 num_vertices | u64 num_edges
//   u64 out_offsets[num_vertices + 1]
//   u32 out_targets[num_edges]
//   u64 fnv1a(payload)

#include <string>

#include "graph/graph.hpp"

namespace ndg {

/// Writes g to `path`. Throws std::runtime_error on I/O failure.
void save_binary_graph(const std::string& path, const Graph& g);

/// Loads a graph written by save_binary_graph. Throws std::runtime_error on
/// I/O failure, bad magic/version, or checksum mismatch.
Graph load_binary_graph(const std::string& path);

}  // namespace ndg
