#pragma once
// Synthetic graph generators. These provide the machine-scaled stand-ins for
// the paper's Table I data-sets (see DESIGN.md "Substitutions") plus small
// structured graphs for tests (chains, grids, stars, cliques, DAGs).
// All generators are deterministic given the seed.

#include <cstdint>

#include "graph/edge_list.hpp"

namespace ndg::gen {

/// R-MAT / Kronecker-style power-law digraph (Chakrabarti, Zhan & Faloutsos,
/// SDM 2004). Defaults are the Graph500 parameters, which give web/social-like
/// degree skew. Produces `num_edges` samples before dedup.
struct RmatOptions {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
  /// Randomly permute vertex ids so locality doesn't correlate with degree.
  bool permute = true;
};
EdgeList rmat(VertexId num_vertices_pow2, EdgeId num_edges, std::uint64_t seed,
              const RmatOptions& opts = {});

/// Erdős–Rényi G(n, m) digraph: `num_edges` uniform random directed edges.
EdgeList erdos_renyi(VertexId num_vertices, EdgeId num_edges, std::uint64_t seed);

/// Directed Watts–Strogatz small-world ring: each vertex points to its next
/// `k` ring successors, each edge rewired to a uniform target with prob. beta.
EdgeList small_world(VertexId num_vertices, unsigned k, double beta,
                     std::uint64_t seed);

/// 2-D grid with edges to the right and down neighbour (regular, low skew,
/// high diameter — the cage15-like structure class).
EdgeList grid2d(VertexId rows, VertexId cols);

/// Path 0 -> 1 -> ... -> n-1.
EdgeList chain(VertexId num_vertices);

/// Directed cycle 0 -> 1 -> ... -> n-1 -> 0.
EdgeList cycle(VertexId num_vertices);

/// Star: hub 0 -> every other vertex.
EdgeList star(VertexId num_vertices);

/// Complete digraph on n vertices (all ordered pairs, no self loops).
EdgeList complete(VertexId num_vertices);

/// Random DAG: each edge (u, v) satisfies u < v; `avg_degree` out-edges per
/// non-sink vertex in expectation.
EdgeList random_dag(VertexId num_vertices, double avg_degree, std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches `m`
/// out-edges to existing vertices with probability proportional to their
/// current degree. Power-law in-degree tail — an alternative web/social
/// stand-in with a different hub structure than R-MAT.
EdgeList barabasi_albert(VertexId num_vertices, unsigned m, std::uint64_t seed);

}  // namespace ndg::gen
