#pragma once
// Raw directed edge list: the interchange format between loaders/generators
// and the CSR/CSC Graph builder.

#include <vector>

#include "util/types.hpp"

namespace ndg {

struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

}  // namespace ndg
