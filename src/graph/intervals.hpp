#pragma once
// Vertex-interval partitioning — the in-memory analogue of GraphChi's shard
// intervals. GraphChi splits [0, |V|) into P execution intervals balanced by
// edge count; the PSW engine (engine/psw.hpp) processes intervals in order,
// exactly like GraphChi's sliding-window passes, with its deterministic
// scheduler's intra-interval parallelism rules.

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace ndg {

struct IntervalPlan {
  /// boundaries[i]..boundaries[i+1] is interval i; size = num_intervals + 1,
  /// boundaries.front() == 0, boundaries.back() == |V|.
  std::vector<VertexId> boundaries;
  /// has_intra_neighbor[v]: v is adjacent (either direction) to another
  /// vertex of its own interval — GraphChi's criterion for forcing v into
  /// the sequential part of the deterministic schedule.
  std::vector<bool> has_intra_neighbor;

  [[nodiscard]] std::size_t num_intervals() const {
    return boundaries.empty() ? 0 : boundaries.size() - 1;
  }
  [[nodiscard]] std::size_t interval_of(VertexId v) const;
};

/// Balances intervals by incident-edge count (in + out), GraphChi-style.
IntervalPlan make_intervals(const Graph& g, std::size_t num_intervals);

}  // namespace ndg
