#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ndg::gen {

namespace {

/// Rounds n up to the next power of two (R-MAT recursion needs 2^k vertices).
VertexId next_pow2(VertexId n) {
  VertexId p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EdgeList rmat(VertexId num_vertices, EdgeId num_edges, std::uint64_t seed,
              const RmatOptions& opts) {
  NDG_ASSERT(num_vertices >= 2);
  const VertexId n = next_pow2(num_vertices);
  int levels = 0;
  for (VertexId p = 1; p < n; p <<= 1) ++levels;

  Xoshiro256 rng(seed);
  const double ab = opts.a + opts.b;
  const double abc = ab + opts.c;

  EdgeList edges;
  edges.reserve(num_edges);
  for (EdgeId i = 0; i < num_edges; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (int l = 0; l < levels; ++l) {
      const double r = rng.next_double();
      src <<= 1;
      dst <<= 1;
      if (r < opts.a) {
        // top-left quadrant: neither bit set
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.push_back(Edge{src, dst});
  }

  if (opts.permute) {
    std::vector<VertexId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    // Fisher-Yates with the same stream keeps the generator fully seeded.
    for (VertexId i = n - 1; i > 0; --i) {
      const auto j = static_cast<VertexId>(rng.next_below(i + 1));
      std::swap(perm[i], perm[j]);
    }
    for (Edge& e : edges) {
      e.src = perm[e.src];
      e.dst = perm[e.dst];
    }
  }
  // Clamp sampled ids into [0, num_vertices) when n > num_vertices.
  if (n != num_vertices) {
    for (Edge& e : edges) {
      e.src %= num_vertices;
      e.dst %= num_vertices;
    }
  }
  return edges;
}

EdgeList erdos_renyi(VertexId num_vertices, EdgeId num_edges, std::uint64_t seed) {
  NDG_ASSERT(num_vertices >= 2);
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(num_edges);
  for (EdgeId i = 0; i < num_edges; ++i) {
    const auto src = static_cast<VertexId>(rng.next_below(num_vertices));
    const auto dst = static_cast<VertexId>(rng.next_below(num_vertices));
    edges.push_back(Edge{src, dst});
  }
  return edges;
}

EdgeList small_world(VertexId num_vertices, unsigned k, double beta,
                     std::uint64_t seed) {
  NDG_ASSERT(num_vertices > k);
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * k);
  for (VertexId v = 0; v < num_vertices; ++v) {
    for (unsigned j = 1; j <= k; ++j) {
      VertexId dst = static_cast<VertexId>((v + j) % num_vertices);
      if (rng.next_double() < beta) {
        dst = static_cast<VertexId>(rng.next_below(num_vertices));
      }
      edges.push_back(Edge{v, dst});
    }
  }
  return edges;
}

EdgeList grid2d(VertexId rows, VertexId cols) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 2);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(Edge{id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back(Edge{id(r, c), id(r + 1, c)});
    }
  }
  return edges;
}

EdgeList chain(VertexId num_vertices) {
  EdgeList edges;
  if (num_vertices < 2) return edges;
  edges.reserve(num_vertices - 1);
  for (VertexId v = 0; v + 1 < num_vertices; ++v) edges.push_back(Edge{v, v + 1});
  return edges;
}

EdgeList cycle(VertexId num_vertices) {
  EdgeList edges = chain(num_vertices);
  if (num_vertices >= 2) edges.push_back(Edge{num_vertices - 1, 0});
  return edges;
}

EdgeList star(VertexId num_vertices) {
  EdgeList edges;
  if (num_vertices < 2) return edges;
  edges.reserve(num_vertices - 1);
  for (VertexId v = 1; v < num_vertices; ++v) edges.push_back(Edge{0, v});
  return edges;
}

EdgeList complete(VertexId num_vertices) {
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * (num_vertices - 1));
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId v = 0; v < num_vertices; ++v) {
      if (u != v) edges.push_back(Edge{u, v});
    }
  }
  return edges;
}

EdgeList random_dag(VertexId num_vertices, double avg_degree, std::uint64_t seed) {
  NDG_ASSERT(num_vertices >= 2);
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(num_vertices * avg_degree));
  for (VertexId u = 0; u + 1 < num_vertices; ++u) {
    const VertexId span = num_vertices - u - 1;
    // Expected avg_degree edges forward; cap by available targets.
    const auto count = static_cast<VertexId>(
        std::min<double>(span, std::floor(avg_degree + rng.next_double())));
    for (VertexId j = 0; j < count; ++j) {
      const auto dst = static_cast<VertexId>(u + 1 + rng.next_below(span));
      edges.push_back(Edge{u, dst});
    }
  }
  return edges;
}

EdgeList barabasi_albert(VertexId num_vertices, unsigned m, std::uint64_t seed) {
  NDG_ASSERT(num_vertices > m && m >= 1);
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.reserve(static_cast<std::size_t>(num_vertices) * m);
  // endpoint_pool holds every edge endpoint seen so far; sampling uniformly
  // from it IS degree-proportional sampling.
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(static_cast<std::size_t>(num_vertices) * m * 2);

  // Seed clique over the first m+1 vertices.
  for (VertexId u = 0; u <= m; ++u) {
    for (VertexId v = 0; v <= m; ++v) {
      if (u == v) continue;
      edges.push_back(Edge{u, v});
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  for (VertexId v = m + 1; v < num_vertices; ++v) {
    for (unsigned k = 0; k < m; ++k) {
      const VertexId target =
          endpoint_pool[rng.next_below(endpoint_pool.size())];
      edges.push_back(Edge{v, target});
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
    }
  }
  return edges;
}

}  // namespace ndg::gen
