#include "graph/loader.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace ndg {

namespace {

/// Parses one "src dst" line; returns false for blank/comment lines.
bool parse_line(std::string_view line, std::size_t line_no, Edge& out) {
  // Trim leading whitespace.
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return false;
  line.remove_prefix(first);
  if (line.front() == '#' || line.front() == '%') return false;

  auto parse_id = [&](std::string_view& s, VertexId& v) {
    const char* begin = s.data();
    const char* end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{}) {
      throw std::runtime_error("malformed edge list at line " +
                               std::to_string(line_no));
    }
    s.remove_prefix(static_cast<std::size_t>(ptr - begin));
    const auto ws = s.find_first_not_of(" \t\r");
    s.remove_prefix(ws == std::string_view::npos ? s.size() : ws);
  };
  parse_id(line, out.src);
  parse_id(line, out.dst);
  return true;
}

LoadedEdgeList parse_stream(std::istream& in) {
  LoadedEdgeList result;
  std::string line;
  std::size_t line_no = 0;
  VertexId max_id = 0;
  bool any = false;
  while (std::getline(in, line)) {
    ++line_no;
    Edge e{};
    if (!parse_line(line, line_no, e)) continue;
    result.edges.push_back(e);
    max_id = std::max({max_id, e.src, e.dst});
    any = true;
  }
  result.num_vertices = any ? max_id + 1 : 0;
  return result;
}

}  // namespace

LoadedEdgeList load_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open edge list: " + path);
  return parse_stream(in);
}

LoadedEdgeList parse_edge_list(const std::string& text) {
  std::istringstream in(text);
  return parse_stream(in);
}

void save_edge_list(const std::string& path, const EdgeList& edges,
                    const std::string& comment) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write edge list: " + path);
  if (!comment.empty()) out << "# " << comment << "\n";
  for (const Edge& e : edges) out << e.src << '\t' << e.dst << '\n';
}

}  // namespace ndg
