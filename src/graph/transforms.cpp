#include "graph/transforms.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/assert.hpp"

namespace ndg {

Graph transpose(const Graph& g) {
  EdgeList edges;
  edges.reserve(g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.out_neighbors(v)) edges.push_back(Edge{u, v});
  }
  return Graph::build(g.num_vertices(), std::move(edges));
}

Graph induced_subgraph(const Graph& g, const std::vector<VertexId>& keep) {
  std::vector<VertexId> old_to_new(g.num_vertices(), kInvalidVertex);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    NDG_ASSERT(keep[i] < g.num_vertices());
    NDG_ASSERT_MSG(old_to_new[keep[i]] == kInvalidVertex,
                   "duplicate vertex in keep set");
    old_to_new[keep[i]] = static_cast<VertexId>(i);
  }
  EdgeList edges;
  for (const VertexId v : keep) {
    const VertexId nv = old_to_new[v];
    for (const VertexId u : g.out_neighbors(v)) {
      if (old_to_new[u] != kInvalidVertex) {
        edges.push_back(Edge{nv, old_to_new[u]});
      }
    }
  }
  return Graph::build(static_cast<VertexId>(keep.size()), std::move(edges));
}

std::vector<VertexId> largest_weak_component(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<std::uint32_t> comp(n, ~0u);
  std::uint32_t num_comps = 0;
  std::queue<VertexId> q;
  for (VertexId root = 0; root < n; ++root) {
    if (comp[root] != ~0u) continue;
    comp[root] = num_comps;
    q.push(root);
    while (!q.empty()) {
      const VertexId u = q.front();
      q.pop();
      auto visit = [&](VertexId w) {
        if (comp[w] == ~0u) {
          comp[w] = num_comps;
          q.push(w);
        }
      };
      for (const VertexId w : g.out_neighbors(u)) visit(w);
      for (const InEdge& ie : g.in_edges(u)) visit(ie.src);
    }
    ++num_comps;
  }

  std::vector<std::size_t> sizes(num_comps, 0);
  for (VertexId v = 0; v < n; ++v) ++sizes[comp[v]];
  const std::uint32_t biggest = static_cast<std::uint32_t>(std::distance(
      sizes.begin(), std::max_element(sizes.begin(), sizes.end())));

  std::vector<VertexId> keep;
  keep.reserve(sizes[biggest]);
  for (VertexId v = 0; v < n; ++v) {
    if (comp[v] == biggest) keep.push_back(v);
  }
  return keep;
}

Relabeling relabel_by_degree(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const EdgeId da = g.in_degree(a) + g.out_degree(a);
    const EdgeId db = g.in_degree(b) + g.out_degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  Relabeling out;
  out.old_to_new.assign(n, 0);
  for (VertexId rank = 0; rank < n; ++rank) out.old_to_new[order[rank]] = rank;

  EdgeList edges;
  edges.reserve(g.num_edges());
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : g.out_neighbors(v)) {
      edges.push_back(Edge{out.old_to_new[v], out.old_to_new[u]});
    }
  }
  out.graph = Graph::build(n, std::move(edges));
  return out;
}

}  // namespace ndg
