#pragma once
// StaticBlockWorklist — the paper's Fig. 1 dispatch ("the static scheduling
// by the OpenMP runtime system") extracted as the baseline Worklist: each
// thread owns exactly the items it pushed, FIFO, so when the engines refill
// by static block over the ascending frontier list the pop order is
// bit-identical to the pre-subsystem engines (contiguous block per thread,
// small-label-first within the thread).
//
// Nothing is shared: pushes and pops touch only per-thread state, there is
// no balancing, and a thread that drains its own queue is done — precisely
// the load-imbalance failure mode on skewed graphs that StealingWorklist
// exists to fix (bench/ablation_schedulers).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sched/worklist.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace ndg {

class StaticBlockWorklist {
 public:
  static constexpr bool kShared = false;

  explicit StaticBlockWorklist(std::size_t num_threads)
      : locals_(num_threads) {
    NDG_ASSERT(num_threads >= 1);
  }

  void push(std::size_t tid, VertexId v, std::uint64_t /*prio*/ = 0) {
    Local& l = locals_[tid];
    l.items.push_back(v);
    ++l.pushes;
  }

  void publish(std::size_t /*tid*/) {}

  /// Pops in push order. Returning false resets the thread's queue so the
  /// engines can refill it on the next iteration without an explicit clear.
  bool try_pop(std::size_t tid, VertexId& out) {
    Local& l = locals_[tid];
    if (l.pos == l.items.size()) {
      l.items.clear();
      l.pos = 0;
      return false;
    }
    out = l.items[l.pos++];
    ++l.pops;
    return true;
  }

  [[nodiscard]] WorklistStats stats() const {
    WorklistStats s;
    for (const Local& l : locals_) {
      s.pushes += l.pushes;
      s.pops += l.pops;
    }
    return s;
  }

 private:
  struct alignas(64) Local {  // own cache line: threads write side by side
    std::vector<VertexId> items;
    std::size_t pos = 0;
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
  };

  std::vector<Local> locals_;
};

static_assert(Worklist<StaticBlockWorklist>);

}  // namespace ndg
