#pragma once
// Runtime selector for the worklist/scheduler subsystem (see
// docs/SCHEDULERS.md). Kept in its own tiny header so EngineOptions can name
// the enum without pulling in the worklist implementations.

#include <optional>
#include <string>

namespace ndg {

/// How an engine dispatches the chosen updates S_n over its P threads — the
/// per-iteration schedule π(v) that parameterises the paper's Section II
/// model. kStaticBlock reproduces the paper's Fig. 1 dispatch exactly; the
/// other kinds explore the schedule space the analysis leaves open.
enum class SchedulerKind {
  kStaticBlock,  // contiguous blocks, small-label-first within a thread
  kStealing,     // chunked per-thread deques with randomized work stealing
  kBucket,       // delta-stepping-style priority buckets (program-keyed)
};

[[nodiscard]] const char* to_string(SchedulerKind kind);

/// Parses the CLI spelling ("static" | "stealing" | "bucket").
[[nodiscard]] std::optional<SchedulerKind> parse_scheduler(
    const std::string& name);

}  // namespace ndg
