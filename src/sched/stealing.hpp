#pragma once
// StealingWorklist — chunked per-thread deques with randomized work stealing,
// the classic Cilk/Galois recipe adapted to vertex worklists:
//
//   * Each thread owns an `open` chunk it fills lock-free; full chunks are
//     published to the thread's deque under a per-thread mutex.
//   * An owner pops from the FRONT of its deque (oldest chunks first, so a
//     static-block refill still drains roughly small-label-first); a thief
//     takes a whole chunk from the BACK of a random victim's deque.
//   * Locks are only taken on chunk boundaries, so the per-item cost stays
//     amortised O(1/chunk_size) regardless of contention.
//
// Exactly-once: every item lives in exactly one place at a time (one open
// chunk, one published deque slot, or one thread's in-hand chunk) and every
// hand-off happens under the owning deque's mutex, so the worklist itself is
// data-race-free (TSan-clean) and no item is lost or duplicated. try_pop
// scans every victim before giving up; with no concurrent producers a false
// return therefore means every remaining item is in some other thread's
// hands and will be finished by that thread.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "sched/worklist.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ndg {

class StealingWorklist {
 public:
  static constexpr bool kShared = true;
  static constexpr std::size_t kDefaultChunk = 32;

  explicit StealingWorklist(std::size_t num_threads,
                            std::size_t chunk_size = kDefaultChunk,
                            std::uint64_t seed = 0x5ced5ced5ced5cedULL)
      : chunk_size_(chunk_size == 0 ? 1 : chunk_size) {
    NDG_ASSERT(num_threads >= 1);
    locals_.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
      locals_.push_back(std::make_unique<Local>(seed + t));
    }
  }

  void push(std::size_t tid, VertexId v, std::uint64_t /*prio*/ = 0) {
    Local& l = *locals_[tid];
    l.open.push_back(v);
    ++l.pushes;
    if (l.open.size() >= chunk_size_) publish(tid);
  }

  /// Flushes tid's open chunk so other threads can steal it.
  void publish(std::size_t tid) {
    Local& l = *locals_[tid];
    if (l.open.empty()) return;
    const std::lock_guard<std::mutex> lock(l.mu);
    l.published.push_back(std::move(l.open));
    l.open.clear();
  }

  bool try_pop(std::size_t tid, VertexId& out) {
    Local& l = *locals_[tid];
    // 1. The chunk already in hand.
    if (l.hand_pos < l.hand.size()) {
      out = l.hand[l.hand_pos++];
      ++l.pops;
      return true;
    }
    // 2. Own published deque, oldest chunk first.
    {
      const std::lock_guard<std::mutex> lock(l.mu);
      if (!l.published.empty()) {
        take_in_hand(l, std::move(l.published.front()));
        l.published.pop_front();
        out = l.hand[l.hand_pos++];
        ++l.pops;
        return true;
      }
    }
    // 3. Own open chunk (never visible to thieves).
    if (!l.open.empty()) {
      take_in_hand(l, std::move(l.open));
      l.open.clear();
      out = l.hand[l.hand_pos++];
      ++l.pops;
      return true;
    }
    // 4. Steal: probe every other thread once, starting at a random victim.
    const std::size_t nt = locals_.size();
    if (nt > 1) {
      const std::size_t start = l.rng.next_below(nt);
      for (std::size_t k = 0; k < nt; ++k) {
        const std::size_t victim = (start + k) % nt;
        if (victim == tid) continue;
        Local& vq = *locals_[victim];
        ++l.steal_attempts;
        const std::lock_guard<std::mutex> lock(vq.mu);
        if (vq.published.empty()) continue;
        take_in_hand(l, std::move(vq.published.back()));
        vq.published.pop_back();
        ++l.steals;
        out = l.hand[l.hand_pos++];
        ++l.pops;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] WorklistStats stats() const {
    WorklistStats s;
    for (const auto& l : locals_) {
      s.pushes += l->pushes;
      s.pops += l->pops;
      s.steals += l->steals;
      s.steal_attempts += l->steal_attempts;
    }
    return s;
  }

 private:
  struct alignas(64) Local {
    explicit Local(std::uint64_t seed) : rng(seed) {}

    std::mutex mu;                               // guards `published` only
    std::deque<std::vector<VertexId>> published;  // shared: owner + thieves
    std::vector<VertexId> open;  // owner-only fill buffer
    std::vector<VertexId> hand;  // owner-only chunk being consumed
    std::size_t hand_pos = 0;
    Xoshiro256 rng;  // victim selection; owner-only
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_attempts = 0;
  };

  static void take_in_hand(Local& l, std::vector<VertexId>&& chunk) {
    l.hand = std::move(chunk);
    l.hand_pos = 0;
  }

  std::size_t chunk_size_;
  std::vector<std::unique_ptr<Local>> locals_;  // stable addresses for mutexes
};

static_assert(Worklist<StealingWorklist>);

}  // namespace ndg
