#pragma once
// The Worklist concept: the pluggable per-iteration schedule π(v) shared by
// the multi-threaded engines. A worklist distributes work items (vertex ids)
// across a fixed team of T threads:
//
//   push(tid, v, prio)  — thread `tid` submits v (prio is a bucket key,
//                         lower = sooner; non-priority worklists ignore it);
//   publish(tid)        — makes tid's buffered pushes visible to other
//                         threads (no-op for unshared worklists);
//   try_pop(tid, out)   — thread `tid` takes its next item. Returns false
//                         when no work is *reachable* for this thread; for
//                         shared worklists other threads may still hold
//                         in-flight items, so engines with concurrent
//                         producers must re-check their own termination
//                         condition (e.g. the pure-async pending counter)
//                         rather than treating false as global emptiness.
//   stats()             — push/pop/steal telemetry aggregated over threads.
//
// Invariant every implementation guarantees (and the stress tests assert):
// each pushed item is popped exactly once, by some thread. The worklists are
// internally race-free — unlike the engines' edge-data accesses, which stay
// exactly as racy as the atomicity policy allows — so they can run under
// ThreadSanitizer (the NDG_TSAN build).
//
// Three production implementations:
//   StaticBlockWorklist  (static_block.hpp) — the paper's Fig. 1 dispatch;
//   StealingWorklist     (stealing.hpp)     — chunked randomized stealing;
//   BucketWorklist       (bucket.hpp)       — delta-stepping-style priority
//                                             buckets.

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "sched/scheduler_kind.hpp"
#include "util/types.hpp"

namespace ndg {

/// Telemetry counters summed over all threads of a worklist. pops == pushes
/// after a full drain (the exactly-once invariant); steals/steal_attempts are
/// nonzero only for StealingWorklist.
struct WorklistStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t steals = 0;          // chunks successfully taken from a victim
  std::uint64_t steal_attempts = 0;  // victims probed (incl. successes)
};

template <typename W>
concept Worklist = requires(W w, const W cw, std::size_t tid, VertexId v,
                            std::uint64_t prio) {
  /// True when pushes by one thread can be popped by another (and therefore
  /// the engines must fence refill from drain).
  { W::kShared } -> std::convertible_to<bool>;
  { w.push(tid, v, prio) };
  { w.publish(tid) };
  { w.try_pop(tid, v) } -> std::same_as<bool>;
  { cw.stats() } -> std::same_as<WorklistStats>;
};

/// Programs opt into priority scheduling by exposing
///   std::uint64_t priority(VertexId) const;   // lower = scheduled sooner
/// (e.g. SSSP's bucketised tentative distance, PageRank's residual class).
/// The hook must be safe to call concurrently with updates of the same
/// vertex — read any shared state through std::atomic_ref.
template <typename P>
concept HasSchedulingPriority = requires(const P p, VertexId v) {
  { p.priority(v) } -> std::convertible_to<std::uint64_t>;
};

/// The bucket key the engines hand to Worklist::push: the program's declared
/// priority, or 0 (single bucket, FIFO-ish) when it declares none.
template <typename P>
[[nodiscard]] std::uint64_t scheduling_priority(const P& prog, VertexId v) {
  if constexpr (HasSchedulingPriority<P>) {
    return prog.priority(v);
  } else {
    (void)prog;
    (void)v;
    return 0;
  }
}

}  // namespace ndg
