#pragma once
// BucketWorklist — delta-stepping-style priority scheduling (Meyer & Sanders'
// Δ-stepping; OBIM in Galois; the delayed-priority schedules of Blanco et
// al.). Items carry a program-supplied bucket key (lower = sooner, see
// scheduling_priority() in worklist.hpp); keys at or beyond num_buckets
// collapse into the last bucket. Threads always pop from the lowest
// non-empty bucket they can find, so execution follows a best-effort global
// priority order — generalising the paper's small-label-first intra-thread
// order from "ascending label" to "ascending program priority" — without any
// per-bucket barrier. Within a bucket items are unordered (threads grab small
// batches under the bucket's mutex to amortise locking).
//
// A relaxed atomic low-water-mark (`floor_`) remembers the lowest bucket
// that might be non-empty: pushes fetch-min it, pops start scanning there.
// It is a hint, not a guarantee — pops rescan forward when a bucket turns
// out empty — so stale values cost a few loads, never an item.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sched/worklist.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace ndg {

class BucketWorklist {
 public:
  static constexpr bool kShared = true;
  static constexpr std::size_t kDefaultBuckets = 64;
  static constexpr std::size_t kBatch = 16;

  explicit BucketWorklist(std::size_t num_threads,
                          std::size_t num_buckets = kDefaultBuckets)
      : buckets_(num_buckets == 0 ? 1 : num_buckets), locals_(num_threads) {
    NDG_ASSERT(num_threads >= 1);
    for (auto& b : buckets_) b = std::make_unique<Bucket>();
    floor_.store(buckets_.size(), std::memory_order_relaxed);
  }

  void push(std::size_t tid, VertexId v, std::uint64_t prio) {
    const std::size_t b =
        static_cast<std::size_t>(std::min<std::uint64_t>(prio, buckets_.size() - 1));
    {
      const std::lock_guard<std::mutex> lock(buckets_[b]->mu);
      buckets_[b]->items.push_back(v);
    }
    // fetch-min on the low-water-mark.
    std::size_t cur = floor_.load(std::memory_order_relaxed);
    while (b < cur &&
           !floor_.compare_exchange_weak(cur, b, std::memory_order_relaxed)) {
    }
    ++locals_[tid].pushes;
  }

  void publish(std::size_t /*tid*/) {}

  bool try_pop(std::size_t tid, VertexId& out) {
    Local& l = locals_[tid];
    if (!l.batch.empty()) {
      out = l.batch.back();
      l.batch.pop_back();
      ++l.pops;
      return true;
    }
    const std::size_t start =
        std::min(floor_.load(std::memory_order_relaxed), buckets_.size());
    for (std::size_t b = start; b < buckets_.size(); ++b) {
      if (!grab_batch(l, b)) continue;
      // Advance the hint past the buckets we just saw empty. CAS against the
      // value we started from: if a concurrent push lowered it, keep theirs.
      std::size_t expected = start;
      if (b > start) floor_.compare_exchange_strong(expected, b,
                                                    std::memory_order_relaxed);
      out = l.batch.back();
      l.batch.pop_back();
      ++l.pops;
      return true;
    }
    // The hint is only a hint: a push into bucket < start may have raced with
    // a concurrent pop's CAS advance, leaving floor_ above a non-empty
    // bucket. Verify emptiness with a full scan before reporting false, and
    // re-lower the hint when the scan finds stranded work.
    for (std::size_t b = 0; b < start; ++b) {
      if (!grab_batch(l, b)) continue;
      std::size_t cur = floor_.load(std::memory_order_relaxed);
      while (b < cur && !floor_.compare_exchange_weak(
                            cur, b, std::memory_order_relaxed)) {
      }
      out = l.batch.back();
      l.batch.pop_back();
      ++l.pops;
      return true;
    }
    return false;
  }

  [[nodiscard]] WorklistStats stats() const {
    WorklistStats s;
    for (const Local& l : locals_) {
      s.pushes += l.pushes;
      s.pops += l.pops;
    }
    return s;
  }

  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }

 private:
  struct Bucket {
    std::mutex mu;
    std::vector<VertexId> items;
  };

  struct alignas(64) Local {
    std::vector<VertexId> batch;  // owner-only staging from the last grab
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
  };

  /// Moves up to kBatch items from bucket b into l.batch; false if empty.
  bool grab_batch(Local& l, std::size_t b) {
    Bucket& bucket = *buckets_[b];
    const std::lock_guard<std::mutex> lock(bucket.mu);
    if (bucket.items.empty()) return false;
    const std::size_t take = std::min(kBatch, bucket.items.size());
    l.batch.assign(bucket.items.end() - static_cast<std::ptrdiff_t>(take),
                   bucket.items.end());
    bucket.items.resize(bucket.items.size() - take);
    return true;
  }

  std::vector<std::unique_ptr<Bucket>> buckets_;
  std::vector<Local> locals_;
  std::atomic<std::size_t> floor_;
};

static_assert(Worklist<BucketWorklist>);

}  // namespace ndg
