#include "sched/scheduler_kind.hpp"

namespace ndg {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kStaticBlock:
      return "static";
    case SchedulerKind::kStealing:
      return "stealing";
    case SchedulerKind::kBucket:
      return "bucket";
  }
  return "?";
}

std::optional<SchedulerKind> parse_scheduler(const std::string& name) {
  if (name == "static") return SchedulerKind::kStaticBlock;
  if (name == "stealing") return SchedulerKind::kStealing;
  if (name == "bucket") return SchedulerKind::kBucket;
  return std::nullopt;
}

}  // namespace ndg
